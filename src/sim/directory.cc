#include "sim/directory.h"

#include <bit>

#include "util/error.h"

namespace tsp::sim {

bool
Directory::Entry::isSharer(uint32_t proc) const
{
    return sharers.test(proc);
}

void
Directory::Entry::addSharer(uint32_t proc)
{
    sharers.set(proc);
}

void
Directory::Entry::dropSharer(uint32_t proc)
{
    sharers.reset(proc);
}

uint32_t
Directory::Entry::sharerCount() const
{
    return sharers.count();
}

Directory::Directory(uint32_t processors, Protocol protocol)
    : processors_(processors), protocol_(protocol)
{
    // The width cap lives in sim::kMaxProcessors alone; the sharer
    // sets themselves size dynamically (sim/sharer_set.h).
    util::fatalIf(processors == 0 || processors > kMaxProcessors,
                  "directory processor count out of range "
                  "(1..sim::kMaxProcessors)");
}

Directory::Txn
Directory::read(uint32_t proc, uint32_t tid, uint64_t block)
{
    Txn txn;
    auto [e, inserted] = entries_.tryEmplace(block);
    txn.blockSeenBefore = !inserted;
    txn.prevLastWriter = e->lastWriter;
    txn.prevLastToucher = e->lastToucher;

    switch (e->state) {
      case State::Uncached:
        if (protocol_ == Protocol::Msi) {
            // MSI has no Exclusive state: a sole reader still only
            // gets Shared, so its first store pays an upgrade.
            e->state = State::Shared;
            e->addSharer(proc);
        } else {
            e->state = State::Owned;
            e->owner = proc;
            e->addSharer(proc);
            txn.grantedExclusive = true;
        }
        break;
      case State::Owned:
        util::panicIf(e->owner == proc,
                      "read miss on a block this processor owns");
        txn.downgradeOwner = true;
        txn.prevOwner = e->owner;
        if (protocol_ == Protocol::Moesi) {
            // Keep the owner on record: if its copy turns out dirty
            // the Machine leaves it Owned (M -> O, no writeback); if
            // clean it calls demoteToShared() to collapse to Shared.
            e->state = State::SharedOwned;
        } else {
            e->state = State::Shared;
        }
        e->addSharer(proc);
        break;
      case State::SharedOwned:
        util::panicIf(protocol_ != Protocol::Moesi,
                      "SharedOwned entry outside MOESI");
        util::panicIf(e->isSharer(proc),
                      "read miss on a block this processor shares");
        // The owner keeps supplying the dirty data; the new reader
        // just joins the sharer set.
        e->addSharer(proc);
        break;
      case State::Shared:
        util::panicIf(e->isSharer(proc),
                      "read miss on a block this processor shares");
        e->addSharer(proc);
        break;
    }
    e->lastToucher = static_cast<int32_t>(tid);
    txn.entry = e;
    return txn;
}

Directory::Txn
Directory::write(uint32_t proc, uint32_t tid, uint64_t block)
{
    Txn txn;
    auto [e, inserted] = entries_.tryEmplace(block);
    txn.blockSeenBefore = !inserted;
    txn.prevLastWriter = e->lastWriter;
    txn.prevLastToucher = e->lastToucher;

    switch (e->state) {
      case State::Uncached:
        break;
      case State::Owned:
        util::panicIf(e->owner == proc,
                      "write transaction on a block this processor "
                      "already owns");
        txn.invalidate.set(e->owner);
        break;
      case State::SharedOwned:
        util::panicIf(protocol_ != Protocol::Moesi,
                      "SharedOwned entry outside MOESI");
        [[fallthrough]];
      case State::Shared:
        // Every current sharer except the writer loses its copy: the
        // victim set is the sharer set itself, no per-processor scan.
        txn.invalidate = e->sharers;
        txn.invalidate.reset(proc);
        break;
    }
    e->sharers.clear();
    e->addSharer(proc);
    e->state = State::Owned;
    e->owner = proc;
    e->lastWriter = static_cast<int32_t>(tid);
    e->lastToucher = static_cast<int32_t>(tid);
    txn.entry = e;
    return txn;
}

void
Directory::demoteToShared(Entry *e)
{
    util::panicIf(e == nullptr || e->state != State::SharedOwned,
                  "demoteToShared on a non-SharedOwned entry");
    e->state = State::Shared;
}

void
Directory::evict(uint32_t proc, uint64_t block)
{
    Entry *e = entries_.find(block);
    util::panicIf(e == nullptr,
                  "eviction of a block the directory never saw");
    evictEntry(proc, e);
}

void
Directory::evictEntry(uint32_t proc, Entry *e)
{
    util::panicIf(e == nullptr,
                  "eviction of a block the directory never saw");
    util::panicIf(!e->isSharer(proc),
                  "eviction from a non-sharer processor");
    e->dropSharer(proc);
    if (e->sharerCount() == 0) {
        e->state = State::Uncached;
    } else if (e->state == State::Owned ||
               (e->state == State::SharedOwned && e->owner == proc)) {
        // The owner left; remaining copies become plain Shared. (For
        // SharedOwned the departing O copy wrote its dirty data back,
        // which the Machine accounts for from the frame's dirty bit.)
        e->state = State::Shared;
    }
}

const Directory::Entry *
Directory::find(uint64_t block) const
{
    return entries_.find(block);
}

} // namespace tsp::sim
