#include "sim/directory.h"

#include <bit>

#include "util/error.h"

namespace tsp::sim {

bool
Directory::Entry::isSharer(uint32_t proc) const
{
    return (sharers[proc >> 6] >> (proc & 63)) & 1;
}

void
Directory::Entry::addSharer(uint32_t proc)
{
    sharers[proc >> 6] |= 1ull << (proc & 63);
}

void
Directory::Entry::dropSharer(uint32_t proc)
{
    sharers[proc >> 6] &= ~(1ull << (proc & 63));
}

uint32_t
Directory::Entry::sharerCount() const
{
    return static_cast<uint32_t>(std::popcount(sharers[0]) +
                                 std::popcount(sharers[1]));
}

Directory::Directory(uint32_t processors) : processors_(processors)
{
    util::fatalIf(processors == 0 || processors > 128,
                  "directory supports 1..128 processors");
}

Directory::Txn
Directory::read(uint32_t proc, uint32_t tid, uint64_t block)
{
    Txn txn;
    auto [it, inserted] = entries_.try_emplace(block);
    Entry &e = it->second;
    txn.blockSeenBefore = !inserted;
    txn.prevLastWriter = e.lastWriter;
    txn.prevLastToucher = e.lastToucher;

    switch (e.state) {
      case State::Uncached:
        e.state = State::Owned;
        e.owner = proc;
        e.addSharer(proc);
        txn.grantedExclusive = true;
        break;
      case State::Owned:
        util::panicIf(e.owner == proc,
                      "read miss on a block this processor owns");
        txn.downgradeOwner = true;
        txn.prevOwner = e.owner;
        e.state = State::Shared;
        e.addSharer(proc);
        break;
      case State::Shared:
        util::panicIf(e.isSharer(proc),
                      "read miss on a block this processor shares");
        e.addSharer(proc);
        break;
    }
    e.lastToucher = static_cast<int32_t>(tid);
    return txn;
}

Directory::Txn
Directory::write(uint32_t proc, uint32_t tid, uint64_t block)
{
    Txn txn;
    auto [it, inserted] = entries_.try_emplace(block);
    Entry &e = it->second;
    txn.blockSeenBefore = !inserted;
    txn.prevLastWriter = e.lastWriter;
    txn.prevLastToucher = e.lastToucher;

    switch (e.state) {
      case State::Uncached:
        break;
      case State::Owned:
        util::panicIf(e.owner == proc,
                      "write transaction on a block this processor "
                      "already owns");
        txn.invalidate.push_back(e.owner);
        break;
      case State::Shared:
        for (uint32_t p = 0; p < processors_; ++p)
            if (p != proc && e.isSharer(p))
                txn.invalidate.push_back(p);
        break;
    }
    e.sharers = {0, 0};
    e.addSharer(proc);
    e.state = State::Owned;
    e.owner = proc;
    e.lastWriter = static_cast<int32_t>(tid);
    e.lastToucher = static_cast<int32_t>(tid);
    return txn;
}

void
Directory::evict(uint32_t proc, uint64_t block)
{
    auto it = entries_.find(block);
    util::panicIf(it == entries_.end(),
                  "eviction of a block the directory never saw");
    Entry &e = it->second;
    util::panicIf(!e.isSharer(proc),
                  "eviction from a non-sharer processor");
    e.dropSharer(proc);
    if (e.sharerCount() == 0) {
        e.state = State::Uncached;
    } else if (e.state == State::Owned) {
        // The owner left; remaining copies (none possible under MESI,
        // but be safe) become Shared.
        e.state = State::Shared;
    }
}

const Directory::Entry *
Directory::find(uint64_t block) const
{
    auto it = entries_.find(block);
    return it == entries_.end() ? nullptr : &it->second;
}

} // namespace tsp::sim
