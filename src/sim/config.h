/**
 * @file
 * Architectural inputs to the simulator (the paper's Table 3).
 *
 * Values stated in the paper's text and reproduced here as defaults:
 * 1-cycle cache hits, direct-mapped caches of 32/64 KB (8 MB for the
 * "infinite" cache study), a 6-cycle context switch triggered by a
 * cache miss, round-robin context scheduling, and a contention-free
 * multipath interconnect approximated by a flat 50-cycle memory
 * latency. The block size (32 bytes) is an assumption documented in
 * DESIGN.md: Table 3's body did not survive in the source text.
 */

#ifndef TSP_SIM_CONFIG_H
#define TSP_SIM_CONFIG_H

#include <cstdint>
#include <string>

namespace tsp::sim {

/**
 * The process-wide default for SimConfig::paranoidEvery: the last
 * setDefaultParanoidEvery() override if any, else the TSP_PARANOID
 * environment variable parsed as a non-negative integer (0 or
 * unparsable/unset = off). The env read happens once and is cached.
 */
uint64_t defaultParanoidEvery();

/** Override defaultParanoidEvery() (CLI `--paranoid N`). */
void setDefaultParanoidEvery(uint64_t every);

/**
 * Hard processor-count cap. The directory's sharer masks and the
 * sharing monitor's toucher masks are fixed-width bit vectors
 * (std::array<uint64_t, 2>, see sim/directory.h and
 * sim/sharing_monitor.h); both carry a static_assert against this
 * constant, so widening the machine means widening the masks in the
 * same change. validate() rejects anything larger with a clear error.
 */
inline constexpr uint32_t kMaxProcessors = 128;

/** Complete architectural description consumed by the Machine. */
struct SimConfig
{
    /** Number of processors. At most kMaxProcessors (mask width). */
    uint32_t processors = 4;

    /** Hardware contexts per processor. */
    uint32_t contexts = 2;

    /** Data cache capacity per processor, in bytes (power of two). */
    uint64_t cacheBytes = 32 * 1024;

    /** Cache block size in bytes (power of two). */
    uint32_t blockBytes = 32;

    /**
     * Cache associativity (ways per set, power of two). The paper's
     * caches are direct-mapped (1); Section 4.1 notes that set
     * associativity would cure the thrashing it observed on Patch,
     * which the associativity ablation bench demonstrates.
     */
    uint32_t associativity = 1;

    /** Cache hit latency in cycles. */
    uint32_t hitLatency = 1;

    /** Flat interconnect/memory latency applied to every miss. */
    uint32_t memoryLatency = 50;

    /**
     * Interconnect channels. 0 (default) reproduces the paper's
     * contention-free multipath network; a positive count bounds the
     * transactions in flight, each occupying its channel for
     * channelOccupancy cycles (see sim/interconnect.h).
     */
    uint32_t networkChannels = 0;

    /** Channel occupancy per transaction, in cycles. */
    uint32_t channelOccupancy = 4;

    /** Cycles to drain the pipeline on a context switch. */
    uint32_t contextSwitchCycles = 6;

    /**
     * Whether a write hit that must invalidate remote sharers (an
     * upgrade) stalls the issuing context like a miss. The paper's
     * context switches are initiated by cache misses only, so the
     * default is false (the write retires; invalidations propagate).
     */
    bool stallOnUpgrade = false;

    /**
     * Collect the write-run sharing profile (SharingMonitor) during
     * the run. Off by default: it adds a hash lookup per reference.
     */
    bool profileSharing = false;

    /**
     * Paranoid mode: run the coherence InvariantChecker every this
     * many memory references (plus once at the end of the run).
     * 0 disables it — the only cost then is one branch per reference.
     * The default comes from the TSP_PARANOID environment variable
     * (see defaultParanoidEvery); the test suite sets it so every
     * simulation in the suite is invariant-checked.
     */
    uint64_t paranoidEvery = defaultParanoidEvery();

    /** Number of cache sets. */
    uint64_t
    numSets() const
    {
        return cacheBytes / blockBytes / associativity;
    }

    /** Throw FatalError if any parameter is out of range. */
    void validate() const;

    /** One-line description for reports. */
    std::string describe() const;

    /** The 8 MB "effectively infinite" cache variant (Section 4.3). */
    SimConfig
    withInfiniteCache() const
    {
        SimConfig c = *this;
        c.cacheBytes = 8ull * 1024 * 1024;
        return c;
    }
};

} // namespace tsp::sim

#endif // TSP_SIM_CONFIG_H
