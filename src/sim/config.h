/**
 * @file
 * Architectural inputs to the simulator (the paper's Table 3).
 *
 * Values stated in the paper's text and reproduced here as defaults:
 * 1-cycle cache hits, direct-mapped caches of 32/64 KB (8 MB for the
 * "infinite" cache study), a 6-cycle context switch triggered by a
 * cache miss, round-robin context scheduling, and a contention-free
 * multipath interconnect approximated by a flat 50-cycle memory
 * latency. The block size (32 bytes) is an assumption documented in
 * DESIGN.md: Table 3's body did not survive in the source text.
 */

#ifndef TSP_SIM_CONFIG_H
#define TSP_SIM_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace tsp::sim {

/**
 * Coherence protocol family. The paper's directory grants Exclusive on
 * sole read misses (MESI-style, see sim/directory.h); the knob exists
 * so the protocol itself can be a sweep axis:
 *
 *  - Msi: no Exclusive state — a sole reader gets Shared, so every
 *    first store pays an upgrade transaction even on private data;
 *  - Mesi: the default, faithful to the reproduction's seed model;
 *  - Moesi: adds the Owned state — a read miss on a Modified block
 *    leaves the dirty data in the owner's cache (M -> O, no writeback)
 *    and the owner keeps supplying it while sharers hold clean copies.
 */
enum class Protocol : uint8_t {
    Msi = 0,
    Mesi = 1,
    Moesi = 2,
};

/** Display name ("MSI", "MESI", "MOESI"). */
std::string protocolName(Protocol p);

/**
 * The process-wide default for SimConfig::paranoidEvery: the last
 * setDefaultParanoidEvery() override if any, else the TSP_PARANOID
 * environment variable parsed as a non-negative integer (0 or
 * unparsable/unset = off). The env read happens once and is cached.
 */
uint64_t defaultParanoidEvery();

/** Override defaultParanoidEvery() (CLI `--paranoid N`). */
void setDefaultParanoidEvery(uint64_t every);

/**
 * Hard processor-count cap — the single place the machine width is
 * bounded. The directory's sharer sets and the sharing monitor's
 * toucher sets are dynamic-width bit vectors (sim::SharerSet,
 * sim/sharer_set.h) that stay inline — allocation-free, pinned by
 * tests/sim_alloc_test.cc — up to SharerSet::kInlineBits = 128
 * processors and spill to a sized heap word array above that. The cap
 * is therefore a sanity bound enforced once by validate() (and the
 * constructors that take a processor count), not a storage limit:
 * raising it requires no data-structure change.
 */
inline constexpr uint32_t kMaxProcessors = 1024;

/** Complete architectural description consumed by the Machine. */
struct SimConfig
{
    /** Number of processors. At most kMaxProcessors. */
    uint32_t processors = 4;

    /** Hardware contexts per processor. */
    uint32_t contexts = 2;

    /** Data cache capacity per processor, in bytes (power of two). */
    uint64_t cacheBytes = 32 * 1024;

    /** Cache block size in bytes (power of two). */
    uint32_t blockBytes = 32;

    /**
     * Cache associativity (ways per set, power of two). The paper's
     * caches are direct-mapped (1); Section 4.1 notes that set
     * associativity would cure the thrashing it observed on Patch,
     * which the associativity ablation bench demonstrates.
     */
    uint32_t associativity = 1;

    /** Cache hit latency in cycles. */
    uint32_t hitLatency = 1;

    /** Flat interconnect/memory latency applied to every miss. */
    uint32_t memoryLatency = 50;

    /** Coherence protocol (sim/directory.h). MESI is the default. */
    Protocol protocol = Protocol::Mesi;

    /**
     * Shared L2/LLC capacity in bytes (power of two). 0 (default)
     * disables the L2 entirely — the paper's one-level hierarchy — so
     * every L1 miss pays the full memoryLatency. When enabled, L1
     * misses that hit the shared L2 pay l2HitLatency instead (see
     * sim/l2_cache.h).
     */
    uint64_t l2Bytes = 0;

    /** Shared L2 associativity (ways per set, power of two). */
    uint32_t l2Associativity = 8;

    /** Latency of an L1 miss served by the shared L2, in cycles. */
    uint32_t l2HitLatency = 12;

    /**
     * Shared L2 inclusion policy. Inclusive (default): every L1-resident
     * block is also in the L2, and an L2 eviction back-invalidates the
     * L1 copies. Exclusive: the L2 is a victim cache holding only
     * blocks resident in no L1.
     */
    bool l2Inclusive = true;

    /**
     * Interconnect channels. 0 (default) reproduces the paper's
     * contention-free multipath network; a positive count bounds the
     * transactions in flight, each occupying its channel for
     * channelOccupancy cycles (see sim/interconnect.h).
     */
    uint32_t networkChannels = 0;

    /** Channel occupancy per transaction, in cycles. */
    uint32_t channelOccupancy = 4;

    /**
     * Queued-interconnect contention model: address-interleaved links,
     * each a FIFO a transaction occupies for linkOccupancy cycles, so
     * latency grows with the queue a miss finds. 0 (default) keeps the
     * paper's contention-free flat latency. Mutually exclusive with
     * networkChannels (see sim/interconnect.h).
     */
    uint32_t networkLinks = 0;

    /** Link occupancy per transaction, in cycles. */
    uint32_t linkOccupancy = 6;

    /** Cycles to drain the pipeline on a context switch. */
    uint32_t contextSwitchCycles = 6;

    /**
     * Whether a write hit that must invalidate remote sharers (an
     * upgrade) stalls the issuing context like a miss. The paper's
     * context switches are initiated by cache misses only, so the
     * default is false (the write retires; invalidations propagate).
     */
    bool stallOnUpgrade = false;

    /**
     * Collect the write-run sharing profile (SharingMonitor) during
     * the run. Off by default: it adds a hash lookup per reference.
     */
    bool profileSharing = false;

    /**
     * Paranoid mode: run the coherence InvariantChecker every this
     * many memory references (plus once at the end of the run).
     * 0 disables it — the only cost then is one branch per reference.
     * The default comes from the TSP_PARANOID environment variable
     * (see defaultParanoidEvery); the test suite sets it so every
     * simulation in the suite is invariant-checked.
     */
    uint64_t paranoidEvery = defaultParanoidEvery();

    /** Number of cache sets. */
    uint64_t
    numSets() const
    {
        return cacheBytes / blockBytes / associativity;
    }

    /** Throw FatalError if any parameter is out of range. */
    void validate() const;

    /** One-line description for reports. */
    std::string describe() const;

    /** The 8 MB "effectively infinite" cache variant (Section 4.3). */
    SimConfig
    withInfiniteCache() const
    {
        SimConfig c = *this;
        c.cacheBytes = 8ull * 1024 * 1024;
        return c;
    }

    /** Number of L2 sets (meaningful only when l2Bytes > 0). */
    uint64_t
    numL2Sets() const
    {
        return l2Bytes / blockBytes / l2Associativity;
    }
};

/**
 * One memory-system knob of SimConfig, as documented in
 * docs/memory_system.md. The `def` and `range` strings are the
 * machine-checked contract: `tests/memsys_doc_test.cc` diffs this
 * catalog against the doc's reference table, so a knob added or a
 * default changed without its doc row fails the build's test suite.
 */
struct MemSystemKnob
{
    std::string name;   //!< SimConfig field name, e.g. "l2Bytes"
    std::string def;    //!< default value, rendered as in the doc
    std::string range;  //!< valid range, rendered as in the doc
};

/**
 * The catalog of every memory-system knob (caches, protocol,
 * interconnect) with its default and valid range. Built from a
 * default-constructed SimConfig so the defaults here can never drift
 * from the code.
 */
std::vector<MemSystemKnob> memSystemKnobs();

} // namespace tsp::sim

#endif // TSP_SIM_CONFIG_H
