/**
 * @file
 * Distributed directory-based invalidation protocol (the paper cites a
 * Censier–Feautrier-style directory [7]). The directory tracks, per
 * block, the exact sharer set (caches notify evictions, so sharer sets
 * never go stale) and single ownership for modified data. Read misses
 * with no other sharers are granted Exclusive (MESI-style) so private
 * data generates no upgrade traffic — see DESIGN.md.
 *
 * The directory is purely bookkeeping: the Machine applies the returned
 * actions (invalidations, downgrades) to the victim caches and accounts
 * for latency and statistics.
 *
 * Hot-path notes: entries live in a util::FlatMap (open addressing, no
 * per-entry heap nodes) sized up front from the trace's touched-block
 * count via reserveBlocks(); a write transaction returns the victims
 * as a sharer *bit set* (sim::SharerSet, inline up to 128 processors)
 * rather than a heap vector, so the steady-state transaction path
 * never allocates on machines up to 128 processors (see
 * docs/performance.md).
 */

#ifndef TSP_SIM_DIRECTORY_H
#define TSP_SIM_DIRECTORY_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/config.h"
#include "sim/sharer_set.h"
#include "util/flat_map.h"

namespace tsp::sim {

/**
 * Global block directory.
 */
class Directory
{
  public:
    /** Directory-side block state. */
    enum class State : uint8_t {
        Uncached = 0,  //!< in no cache
        Shared = 1,    //!< clean copies in >= 1 cache
        Owned = 2,     //!< exactly one cache holds it (E or M;
                       //!< M only under MSI)
        SharedOwned = 3, //!< MOESI only: `owner` holds a dirty O copy,
                         //!< other sharers hold clean S copies
    };

    /** Per-block directory entry. */
    struct Entry
    {
        SharerSet sharers;  //!< bit set over processors
        State state = State::Uncached;
        uint32_t owner = 0;       //!< valid when state is Owned or
                                  //!< SharedOwned
        int32_t lastWriter = -1;  //!< last thread to write the block
        int32_t lastToucher = -1; //!< last thread to access the block

        bool isSharer(uint32_t proc) const;
        void addSharer(uint32_t proc);
        void dropSharer(uint32_t proc);
        uint32_t sharerCount() const;
    };

    /** Outcome of a read or write transaction. */
    struct Txn
    {
        /** Block had a directory entry before this transaction. */
        bool blockSeenBefore = false;

        /** lastWriter before the transaction (thread id or -1). */
        int32_t prevLastWriter = -1;

        /** lastToucher before the transaction (thread id or -1). */
        int32_t prevLastToucher = -1;

        /** Read found the block Owned elsewhere: downgrade this proc. */
        bool downgradeOwner = false;
        uint32_t prevOwner = 0;

        /**
         * Processors whose copies a write must invalidate, as a bit
         * set over processors (same layout as Entry::sharers). A bit
         * set instead of a heap vector keeps every write transaction
         * allocation-free up to 128 processors (the SharerSet inline
         * width); iterate with forEachInvalidate().
         */
        SharerSet invalidate;

        /** Whether the block was granted Exclusive (read, no sharers). */
        bool grantedExclusive = false;

        /**
         * Stable handle on the block's directory entry. Entries are
         * never erased and the table never rehashes once
         * reserveBlocks() has covered the run's touched blocks, so the
         * handle stays valid for the whole run; the Machine caches it
         * per cache frame to evict without a second hash lookup
         * (docs/performance.md).
         */
        Entry *entry = nullptr;

        /** True when the write must invalidate at least one copy. */
        bool
        anyInvalidate() const
        {
            return invalidate.any();
        }

        /** Number of copies the write invalidates. */
        uint32_t
        invalidateCount() const
        {
            return invalidate.count();
        }

        /** Visit each victim processor id, in ascending order. */
        template <typename F>
        void
        forEachInvalidate(F &&fn) const
        {
            invalidate.forEach(std::forward<F>(fn));
        }

        /** The victims as an ascending vector (tests/diagnostics). */
        std::vector<uint32_t>
        invalidateList() const
        {
            std::vector<uint32_t> out;
            out.reserve(invalidateCount());
            forEachInvalidate([&](uint32_t p) { out.push_back(p); });
            return out;
        }
    };

    /**
     * Construct for @p processors processors (<= kMaxProcessors)
     * running
     * @p protocol. The protocol decides what a read miss is granted
     * (MSI never grants Exclusive) and whether a read of an Owned
     * block evicts the dirty copy (MOESI keeps it, entering
     * SharedOwned).
     */
    explicit Directory(uint32_t processors,
                       Protocol protocol = Protocol::Mesi);

    /**
     * Pre-size the entry table for @p blocks distinct blocks, so the
     * steady-state transaction path never rehashes. The Machine calls
     * this with the trace's touched-block count at construction.
     */
    void reserveBlocks(size_t blocks) { entries_.reserve(blocks); }

    /**
     * Read transaction: processor @p proc (running thread @p tid)
     * fetches @p block. The caller must not already hold the block.
     */
    Txn read(uint32_t proc, uint32_t tid, uint64_t block);

    /**
     * Write transaction: processor @p proc (running thread @p tid)
     * obtains ownership of @p block. Also used for upgrades (when
     * @p proc already holds a Shared copy).
     */
    Txn write(uint32_t proc, uint32_t tid, uint64_t block);

    /**
     * MOESI only: a read found the block Owned but the Machine saw the
     * owner's copy was clean (Exclusive, not Modified), so there is no
     * dirty data to keep supplying — collapse the tentative
     * SharedOwned state read() set back to plain Shared.
     */
    void demoteToShared(Entry *e);

    /** Eviction notification from @p proc for @p block. */
    void evict(uint32_t proc, uint64_t block);

    /**
     * Eviction notification through the Txn::entry handle a previous
     * transaction on the block returned — evict() minus the hash
     * lookup, for the simulator's steady-state miss path.
     */
    void evictEntry(uint32_t proc, Entry *e);

    /** Entry lookup (nullptr when the block was never touched). */
    const Entry *find(uint64_t block) const;

    /** Number of blocks with directory entries. */
    size_t entryCount() const { return entries_.size(); }

    /** Processor count this directory was built for. */
    uint32_t processors() const { return processors_; }

    /** Protocol this directory was built for. */
    Protocol protocol() const { return protocol_; }

    /**
     * Visit every (block, entry) pair, in unspecified order. Used by
     * the paranoid-mode InvariantChecker to cross-check the directory
     * against the caches.
     */
    template <typename F>
    void
    forEachEntry(F &&fn) const
    {
        entries_.forEach(std::forward<F>(fn));
    }

  private:
    uint32_t processors_;
    Protocol protocol_;
    util::FlatMap<uint64_t, Entry> entries_;
};

} // namespace tsp::sim

#endif // TSP_SIM_DIRECTORY_H
