/**
 * @file
 * Distributed directory-based invalidation protocol (the paper cites a
 * Censier–Feautrier-style directory [7]). The directory tracks, per
 * block, the exact sharer set (caches notify evictions, so sharer sets
 * never go stale) and single ownership for modified data. Read misses
 * with no other sharers are granted Exclusive (MESI-style) so private
 * data generates no upgrade traffic — see DESIGN.md.
 *
 * The directory is purely bookkeeping: the Machine applies the returned
 * actions (invalidations, downgrades) to the victim caches and accounts
 * for latency and statistics.
 */

#ifndef TSP_SIM_DIRECTORY_H
#define TSP_SIM_DIRECTORY_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace tsp::sim {

/**
 * Global block directory.
 */
class Directory
{
  public:
    /** Directory-side block state. */
    enum class State : uint8_t {
        Uncached = 0,  //!< in no cache
        Shared = 1,    //!< clean copies in >= 1 cache
        Owned = 2,     //!< exactly one cache holds it (E or M)
    };

    /** Per-block directory entry. */
    struct Entry
    {
        std::array<uint64_t, 2> sharers{};  //!< bitmask over processors
        State state = State::Uncached;
        uint32_t owner = 0;       //!< valid when state == Owned
        int32_t lastWriter = -1;  //!< last thread to write the block
        int32_t lastToucher = -1; //!< last thread to access the block

        bool isSharer(uint32_t proc) const;
        void addSharer(uint32_t proc);
        void dropSharer(uint32_t proc);
        uint32_t sharerCount() const;
    };

    /** Outcome of a read or write transaction. */
    struct Txn
    {
        /** Block had a directory entry before this transaction. */
        bool blockSeenBefore = false;

        /** lastWriter before the transaction (thread id or -1). */
        int32_t prevLastWriter = -1;

        /** lastToucher before the transaction (thread id or -1). */
        int32_t prevLastToucher = -1;

        /** Read found the block Owned elsewhere: downgrade this proc. */
        bool downgradeOwner = false;
        uint32_t prevOwner = 0;

        /** Processors whose copies a write must invalidate. */
        std::vector<uint32_t> invalidate;

        /** Whether the block was granted Exclusive (read, no sharers). */
        bool grantedExclusive = false;
    };

    /** Construct for @p processors processors (<= 128). */
    explicit Directory(uint32_t processors);

    /**
     * Read transaction: processor @p proc (running thread @p tid)
     * fetches @p block. The caller must not already hold the block.
     */
    Txn read(uint32_t proc, uint32_t tid, uint64_t block);

    /**
     * Write transaction: processor @p proc (running thread @p tid)
     * obtains ownership of @p block. Also used for upgrades (when
     * @p proc already holds a Shared copy).
     */
    Txn write(uint32_t proc, uint32_t tid, uint64_t block);

    /** Eviction notification from @p proc for @p block. */
    void evict(uint32_t proc, uint64_t block);

    /** Entry lookup (nullptr when the block was never touched). */
    const Entry *find(uint64_t block) const;

    /** Number of blocks with directory entries. */
    size_t entryCount() const { return entries_.size(); }

    /**
     * Visit every (block, entry) pair, in unspecified order. Used by
     * the paranoid-mode InvariantChecker to cross-check the directory
     * against the caches.
     */
    template <typename F>
    void
    forEachEntry(F &&fn) const
    {
        for (const auto &[block, entry] : entries_)
            fn(block, entry);
    }

  private:
    uint32_t processors_;
    std::unordered_map<uint64_t, Entry> entries_;
};

} // namespace tsp::sim

#endif // TSP_SIM_DIRECTORY_H
