#include "sim/interconnect.h"

#include <algorithm>

#include "util/error.h"

namespace tsp::sim {

Interconnect::Interconnect(uint32_t channels, uint32_t baseLatency,
                           uint32_t occupancy)
    : baseLatency_(baseLatency), occupancy_(occupancy)
{
    util::fatalIf(channels > 4096, "implausible channel count");
    freeAt_.assign(channels, 0);
}

Interconnect::Interconnect(const SimConfig &cfg)
    : baseLatency_(cfg.memoryLatency)
{
    cfg.validate();
    if (cfg.networkLinks > 0) {
        interleaved_ = true;
        occupancy_ = cfg.linkOccupancy;
        freeAt_.assign(cfg.networkLinks, 0);
    } else {
        occupancy_ = cfg.channelOccupancy;
        freeAt_.assign(cfg.networkChannels, 0);
    }
}

uint64_t
Interconnect::queueDelay(uint64_t now, uint64_t block)
{
    ++transactions_;
    if (freeAt_.empty())
        return 0;  // contention-free multipath (the paper)

    uint64_t *slot;
    if (interleaved_) {
        // Queued link: the block's address picks its FIFO.
        slot = &freeAt_[block % freeAt_.size()];
    } else {
        // Channels: any free path will do; take the earliest.
        slot = &*std::min_element(freeAt_.begin(), freeAt_.end());
    }
    uint64_t start = std::max(now, *slot);
    uint64_t wait = start - now;
    *slot = start + occupancy_;

    queueing_ += wait;
    maxQueueing_ = std::max(maxQueueing_, wait);
    return wait;
}

uint64_t
Interconnect::transactionLatency(uint64_t now)
{
    return queueDelay(now, 0) + baseLatency_;
}

} // namespace tsp::sim
