#include "sim/interconnect.h"

#include <algorithm>

#include "util/error.h"

namespace tsp::sim {

Interconnect::Interconnect(uint32_t channels, uint32_t baseLatency,
                           uint32_t occupancy)
    : baseLatency_(baseLatency), occupancy_(occupancy)
{
    util::fatalIf(channels > 4096, "implausible channel count");
    channelFreeAt_.assign(channels, 0);
}

uint64_t
Interconnect::transactionLatency(uint64_t now)
{
    ++transactions_;
    if (channelFreeAt_.empty())
        return baseLatency_;  // contention-free multipath (the paper)

    auto it = std::min_element(channelFreeAt_.begin(),
                               channelFreeAt_.end());
    uint64_t start = std::max(now, *it);
    uint64_t wait = start - now;
    *it = start + occupancy_;

    queueing_ += wait;
    maxQueueing_ = std::max(maxQueueing_, wait);
    return wait + baseLatency_;
}

} // namespace tsp::sim
