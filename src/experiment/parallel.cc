#include "experiment/parallel.h"

#include <map>
#include <tuple>

namespace tsp::experiment {

namespace {

/** Orderable identity of a job, for deduplication. */
std::tuple<int, int, uint32_t, uint32_t, bool>
jobKey(const RunJob &job)
{
    return {static_cast<int>(job.app), static_cast<int>(job.alg),
            job.point.processors, job.point.contexts,
            job.infiniteCache};
}

} // namespace

ParallelRunner::ParallelRunner(Lab &lab, unsigned jobs)
    : lab_(lab), jobs_(jobs > 0 ? jobs : 1)
{}

std::vector<RunResult>
ParallelRunner::runAll(const std::vector<RunJob> &jobs)
{
    // Deduplicate: unique jobs simulate once, duplicates copy.
    std::vector<size_t> uniqueOf(jobs.size());
    std::vector<size_t> uniqueJobs;
    std::map<std::tuple<int, int, uint32_t, uint32_t, bool>, size_t>
        firstSeen;
    for (size_t i = 0; i < jobs.size(); ++i) {
        auto [it, inserted] =
            firstSeen.try_emplace(jobKey(jobs[i]), uniqueJobs.size());
        if (inserted)
            uniqueJobs.push_back(i);
        uniqueOf[i] = it->second;
    }

    std::vector<RunResult> unique(uniqueJobs.size());
    // jobs_ == 1 runs inline (ThreadPool(0)); wider pools keep the
    // calling thread as one of the workers via parallelFor.
    util::ThreadPool pool(jobs_ > 1 ? jobs_ - 1 : 0);
    pool.parallelFor(uniqueJobs.size(), [&](size_t u) {
        const RunJob &job = jobs[uniqueJobs[u]];
        unique[u] =
            lab_.run(job.app, job.alg, job.point, job.infiniteCache);
    });

    std::vector<RunResult> out(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        out[i] = unique[uniqueOf[i]];
    return out;
}

void
ParallelRunner::warmup(const std::vector<workload::AppId> &apps,
                       bool coherence)
{
    util::ThreadPool pool(jobs_ > 1 ? jobs_ - 1 : 0);
    pool.parallelFor(apps.size(), [&](size_t i) {
        lab_.warmup(apps[i], coherence);
    });
}

} // namespace tsp::experiment
