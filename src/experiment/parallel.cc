#include "experiment/parallel.h"

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>

#include "experiment/checkpoint.h"
#include "obs/metric_defs.h"
#include "obs/timer.h"
#include "obs/trace_sink.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/watchdog.h"

namespace tsp::experiment {

namespace {

/** Orderable identity of a job, for deduplication. */
std::tuple<int, int, uint32_t, uint32_t, bool>
jobKey(const RunJob &job)
{
    return {static_cast<int>(job.app), static_cast<int>(job.alg),
            job.point.processors, job.point.contexts,
            job.infiniteCache};
}

} // namespace

std::string
describeJob(const RunJob &job)
{
    return workload::appName(job.app) + "/" +
           placement::algorithmName(job.alg) + "@" +
           job.point.label() +
           (job.infiniteCache ? " (8MB cache)" : "");
}

std::string
JobFailure::describe() const
{
    return describeJob(job) + ": " + error;
}

ParallelRunner::ParallelRunner(Lab &lab, unsigned jobs) : lab_(lab)
{
    options_.jobs = jobs > 0 ? jobs : 1;
}

ParallelRunner::ParallelRunner(Lab &lab, const SweepOptions &options)
    : lab_(lab), options_(options)
{
    if (options_.jobs == 0)
        options_.jobs = 1;
}

std::vector<Outcome<RunResult>>
ParallelRunner::runAllOutcomes(const std::vector<RunJob> &jobs)
{
    stats_ = SweepStats{};
    stats_.total = jobs.size();

    // Deduplicate: unique jobs simulate once, duplicates copy.
    std::vector<size_t> uniqueOf(jobs.size());
    std::vector<size_t> uniqueJobs;
    std::map<std::tuple<int, int, uint32_t, uint32_t, bool>, size_t>
        firstSeen;
    for (size_t i = 0; i < jobs.size(); ++i) {
        auto [it, inserted] =
            firstSeen.try_emplace(jobKey(jobs[i]), uniqueJobs.size());
        if (inserted)
            uniqueJobs.push_back(i);
        uniqueOf[i] = it->second;
    }
    stats_.unique = uniqueJobs.size();

    std::vector<Outcome<RunResult>> unique(uniqueJobs.size());
    std::vector<double> uniqueMillis(uniqueJobs.size(), 0.0);

    // Replay journaled cells; only the rest hit the pool.
    std::vector<size_t> pending;
    pending.reserve(uniqueJobs.size());
    for (size_t u = 0; u < uniqueJobs.size(); ++u) {
        if (options_.checkpoint) {
            if (auto hit =
                    options_.checkpoint->lookup(jobs[uniqueJobs[u]])) {
                unique[u] =
                    Outcome<RunResult>::success(std::move(*hit));
                ++stats_.fromCheckpoint;
                continue;
            }
        }
        pending.push_back(u);
    }

    std::optional<util::Watchdog> watchdog;
    if (options_.jobDeadline.count() > 0)
        watchdog.emplace(options_.jobDeadline);

    // PanicError means a library bug: fail the sweep fast. The flag
    // short-circuits iterations that have not started yet; the first
    // panic (by pool schedule) is rethrown after the pool drains.
    std::atomic<bool> panicked{false};
    std::exception_ptr panic;
    std::mutex panicMutex;
    std::atomic<size_t> cancelledCells{0};

    util::ThreadPool pool(
        options_.jobs > 1 ? options_.jobs - 1 : 0);
    pool.parallelFor(pending.size(), [&](size_t k) {
        if (panicked.load(std::memory_order_relaxed))
            return;
        const RunJob &job = jobs[uniqueJobs[pending[k]]];
        if (options_.cancel && options_.cancel->cancelled()) {
            // Poison stays descriptive: the cell reports *why* it has
            // no result, and a resume with the same checkpoint re-runs
            // exactly these cells.
            unique[pending[k]] = Outcome<RunResult>::failure(
                "sweep cancelled before this cell started");
            cancelledCells.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        std::optional<util::Watchdog::Guard> guard;
        if (watchdog)
            guard.emplace(watchdog->watch(describeJob(job)));
        obs::StopWatch cellWatch;
        try {
            if (options_.faultInjector)
                options_.faultInjector(job);
            RunResult result = lab_.run(job.app, job.alg, job.point,
                                        job.infiniteCache);
            double cellMs = cellWatch.elapsedMs();
            uniqueMillis[pending[k]] = cellMs;
            obs::sweepCellMillis().observe(cellMs);
            if (obs::TraceSink *sink = obs::TraceSink::global()) {
                sink->complete(
                    describeJob(job), "sweep", cellMs,
                    {obs::TraceArg::str("app",
                                        workload::appName(job.app)),
                     obs::TraceArg::str(
                         "alg", placement::algorithmName(job.alg)),
                     obs::TraceArg::str("point", job.point.label())});
            }
            if (options_.checkpoint) {
                try {
                    options_.checkpoint->record(job, result);
                } catch (const std::exception &e) {
                    // A journaling failure must not fail the cell —
                    // the result is still good, only resumability of
                    // this cell is lost.
                    obs::checkpointAppendFailures().inc();
                    util::warn(util::concat(
                        "checkpoint record failed for ",
                        describeJob(job), ": ", e.what()));
                }
            }
            unique[pending[k]] =
                Outcome<RunResult>::success(std::move(result));
        } catch (const util::PanicError &) {
            std::lock_guard<std::mutex> lock(panicMutex);
            if (!panic)
                panic = std::current_exception();
            panicked.store(true, std::memory_order_relaxed);
        } catch (const std::exception &e) {
            unique[pending[k]] =
                Outcome<RunResult>::failure(e.what());
        }
    });

    if (panic)
        std::rethrow_exception(panic);

    stats_.cancelled = cancelledCells.load();
    stats_.executed = pending.size() - stats_.cancelled;
    for (size_t u : pending) {
        if (!unique[u].ok())
            ++stats_.failed;
    }
    stats_.failed -= stats_.cancelled;  // cancelled != genuinely failed
    if (watchdog)
        stats_.watchdogFlagged =
            static_cast<size_t>(watchdog->overdueCount());

    obs::sweepCellsExecuted().add(stats_.executed);
    obs::sweepCellsFromCheckpoint().add(stats_.fromCheckpoint);
    obs::sweepCellsFailed().add(stats_.failed);

    std::vector<Outcome<RunResult>> out(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        out[i] = unique[uniqueOf[i]];
    if (options_.cellMillisOut) {
        options_.cellMillisOut->assign(jobs.size(), 0.0);
        for (size_t i = 0; i < jobs.size(); ++i)
            (*options_.cellMillisOut)[i] = uniqueMillis[uniqueOf[i]];
    }
    if (options_.statsOut)
        *options_.statsOut = stats_;
    return out;
}

std::vector<RunResult>
ParallelRunner::runAll(const std::vector<RunJob> &jobs)
{
    auto outcomes = runAllOutcomes(jobs);
    std::vector<RunResult> out(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (!outcomes[i].ok()) {
            util::fatal("sweep job " + describeJob(jobs[i]) +
                        " failed: " + outcomes[i].error());
        }
        out[i] = std::move(outcomes[i].value());
    }
    return out;
}

void
ParallelRunner::warmup(const std::vector<workload::AppId> &apps,
                       bool coherence)
{
    util::ThreadPool pool(
        options_.jobs > 1 ? options_.jobs - 1 : 0);
    pool.parallelFor(apps.size(), [&](size_t i) {
        lab_.warmup(apps[i], coherence);
    });
}

} // namespace tsp::experiment
