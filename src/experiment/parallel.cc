#include "experiment/parallel.h"

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>

#include <cstdlib>

#include "experiment/checkpoint.h"
#include "obs/metric_defs.h"
#include "obs/timer.h"
#include "obs/trace_sink.h"
#include "sim/batch_machine.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/watchdog.h"

namespace tsp::experiment {

namespace {

/** Orderable identity of a job, for deduplication. */
std::tuple<int, int, uint32_t, uint32_t, bool, int>
jobKey(const RunJob &job)
{
    return {static_cast<int>(job.app), static_cast<int>(job.alg),
            job.point.processors, job.point.contexts,
            job.infiniteCache, static_cast<int>(job.memSystem)};
}

} // namespace

unsigned
defaultBatchLanes()
{
    static const unsigned cached = [] {
        const char *env = std::getenv("TSP_BATCH");
        if (!env || !*env)
            return 1u;
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end == env || *end != '\0' || v == 0)
            return 1u;
        return static_cast<unsigned>(v);
    }();
    return cached;
}

std::string
describeJob(const RunJob &job)
{
    return workload::appName(job.app) + "/" +
           placement::algorithmName(job.alg) + "@" +
           job.point.label() +
           (job.infiniteCache ? " (8MB cache)" : "") +
           (job.memSystem != MemSystem::Flat1994
                ? " [" + memSystemName(job.memSystem) + "]"
                : "");
}

std::string
JobFailure::describe() const
{
    return describeJob(job) + ": " + error;
}

ParallelRunner::ParallelRunner(Lab &lab, unsigned jobs) : lab_(lab)
{
    options_.jobs = jobs > 0 ? jobs : 1;
}

ParallelRunner::ParallelRunner(Lab &lab, const SweepOptions &options)
    : lab_(lab), options_(options)
{
    if (options_.jobs == 0)
        options_.jobs = 1;
}

std::vector<Outcome<RunResult>>
ParallelRunner::runAllOutcomes(const std::vector<RunJob> &jobs)
{
    stats_ = SweepStats{};
    stats_.total = jobs.size();

    // Deduplicate: unique jobs simulate once, duplicates copy.
    std::vector<size_t> uniqueOf(jobs.size());
    std::vector<size_t> uniqueJobs;
    std::map<std::tuple<int, int, uint32_t, uint32_t, bool, int>,
             size_t>
        firstSeen;
    for (size_t i = 0; i < jobs.size(); ++i) {
        auto [it, inserted] =
            firstSeen.try_emplace(jobKey(jobs[i]), uniqueJobs.size());
        if (inserted)
            uniqueJobs.push_back(i);
        uniqueOf[i] = it->second;
    }
    stats_.unique = uniqueJobs.size();

    std::vector<Outcome<RunResult>> unique(uniqueJobs.size());
    std::vector<double> uniqueMillis(uniqueJobs.size(), 0.0);

    // Replay journaled cells; only the rest hit the pool.
    std::vector<size_t> pending;
    pending.reserve(uniqueJobs.size());
    for (size_t u = 0; u < uniqueJobs.size(); ++u) {
        if (options_.checkpoint) {
            if (auto hit =
                    options_.checkpoint->lookup(jobs[uniqueJobs[u]])) {
                unique[u] =
                    Outcome<RunResult>::success(std::move(*hit));
                ++stats_.fromCheckpoint;
                continue;
            }
        }
        pending.push_back(u);
    }

    std::optional<util::Watchdog> watchdog;
    if (options_.jobDeadline.count() > 0)
        watchdog.emplace(options_.jobDeadline);

    // PanicError means a library bug: fail the sweep fast. The flag
    // short-circuits iterations that have not started yet; the first
    // panic (by pool schedule) is rethrown after the pool drains.
    std::atomic<bool> panicked{false};
    std::exception_ptr panic;
    std::mutex panicMutex;
    std::atomic<size_t> cancelledCells{0};

    // Group the pending cells: with batching on, up to options_.batch
    // cells of one application become lanes of a single lockstep
    // sim::BatchMachine over the app's shared traces. With batching
    // off every group is a singleton, the classic one-cell-per-task
    // shape. Results are bit-identical either way.
    const size_t lanesPerBatch =
        options_.batch > 1 ? options_.batch : 1;
    std::vector<std::vector<size_t>> groups;
    groups.reserve(pending.size());
    if (lanesPerBatch <= 1) {
        for (size_t u : pending)
            groups.push_back({u});
    } else {
        std::map<int, std::vector<size_t>> open;  // app -> filling
        for (size_t u : pending) {
            auto &bucket =
                open[static_cast<int>(jobs[uniqueJobs[u]].app)];
            bucket.push_back(u);
            if (bucket.size() >= lanesPerBatch) {
                groups.push_back(std::move(bucket));
                bucket.clear();
            }
        }
        for (auto &[app, bucket] : open) {
            if (!bucket.empty())
                groups.push_back(std::move(bucket));
        }
    }

    auto notePanic = [&] {
        std::lock_guard<std::mutex> lock(panicMutex);
        if (!panic)
            panic = std::current_exception();
        panicked.store(true, std::memory_order_relaxed);
    };

    auto journal = [&](const RunJob &job, const RunResult &result) {
        if (!options_.checkpoint)
            return;
        try {
            options_.checkpoint->record(job, result);
        } catch (const std::exception &e) {
            // A journaling failure must not fail the cell — the
            // result is still good, only resumability of this cell
            // is lost.
            obs::checkpointAppendFailures().inc();
            util::warn(util::concat("checkpoint record failed for ",
                                    describeJob(job), ": ",
                                    e.what()));
        }
    };

    auto sinkCell = [&](const RunJob &job, double cellMs) {
        obs::sweepCellMillis().observe(cellMs);
        if (obs::TraceSink *sink = obs::TraceSink::global()) {
            sink->complete(
                describeJob(job), "sweep", cellMs,
                {obs::TraceArg::str("app",
                                    workload::appName(job.app)),
                 obs::TraceArg::str(
                     "alg", placement::algorithmName(job.alg)),
                 obs::TraceArg::str("point", job.point.label())});
        }
    };

    // Poison stays descriptive: the cell reports *why* it has no
    // result, and a resume with the same checkpoint re-runs exactly
    // these cells.
    auto cancelCell = [&](size_t u) {
        unique[u] = Outcome<RunResult>::failure(
            "sweep cancelled before this cell started");
        cancelledCells.fetch_add(1, std::memory_order_relaxed);
    };

    auto runSingle = [&](size_t u) {
        const RunJob &job = jobs[uniqueJobs[u]];
        if (options_.cancel && options_.cancel->cancelled()) {
            cancelCell(u);
            return;
        }
        std::optional<util::Watchdog::Guard> guard;
        if (watchdog)
            guard.emplace(watchdog->watch(describeJob(job)));
        obs::StopWatch cellWatch;
        try {
            if (options_.faultInjector)
                options_.faultInjector(job);
            RunResult result = lab_.run(job.app, job.alg, job.point,
                                        job.infiniteCache,
                                        job.memSystem);
            double cellMs = cellWatch.elapsedMs();
            uniqueMillis[u] = cellMs;
            sinkCell(job, cellMs);
            journal(job, result);
            unique[u] = Outcome<RunResult>::success(std::move(result));
        } catch (const util::PanicError &) {
            notePanic();
        } catch (const std::exception &e) {
            unique[u] = Outcome<RunResult>::failure(e.what());
        }
    };

    auto runBatch = [&](const std::vector<size_t> &group) {
        if (group.size() == 1) {
            runSingle(group.front());
            return;
        }
        if (options_.cancel && options_.cancel->cancelled()) {
            for (size_t u : group)
                cancelCell(u);
            return;
        }
        // Per-lane preparation keeps per-cell fault isolation: the
        // chaos hook, the machine-point validation and the placement
        // can each fail this lane alone.
        struct Prep
        {
            size_t u = 0;
            sim::SimConfig cfg;
            placement::PlacementMap placement;
        };
        std::vector<Prep> preps;
        preps.reserve(group.size());
        for (size_t u : group) {
            const RunJob &job = jobs[uniqueJobs[u]];
            try {
                if (options_.faultInjector)
                    options_.faultInjector(job);
                Prep prep;
                prep.u = u;
                prep.cfg = lab_.configFor(job.app, job.point,
                                          job.infiniteCache,
                                          job.memSystem);
                prep.placement = lab_.placementFor(
                    job.app, job.alg, job.point.processors);
                preps.push_back(std::move(prep));
            } catch (const util::PanicError &) {
                notePanic();
                return;
            } catch (const std::exception &e) {
                unique[u] = Outcome<RunResult>::failure(e.what());
            }
        }
        if (preps.empty())
            return;
        const RunJob &first = jobs[uniqueJobs[preps.front().u]];
        std::optional<util::Watchdog::Guard> guard;
        if (watchdog) {
            guard.emplace(watchdog->watch(
                util::concat(describeJob(first), " [batch of ",
                             preps.size(), " lanes]")));
        }
        obs::StopWatch batchWatch;
        size_t assigned = 0;
        try {
            const trace::TraceSet &traces = lab_.traces(first.app);
            const analysis::StaticAnalysis &an =
                lab_.analysis(first.app);
            std::vector<sim::BatchLane> lanes;
            lanes.reserve(preps.size());
            for (const Prep &prep : preps)
                lanes.push_back({prep.cfg, prep.placement});
            sim::BatchMachine machine(std::move(lanes), traces);
            std::vector<sim::LaneResult> results = machine.run();
            // The lanes ran interleaved on one thread; each cell's
            // attributed cost is its share of the batch wall time.
            double perLane = batchWatch.elapsedMs() /
                             static_cast<double>(results.size());
            for (; assigned < preps.size(); ++assigned) {
                Prep &prep = preps[assigned];
                const RunJob &job = jobs[uniqueJobs[prep.u]];
                sim::LaneResult &lane = results[assigned];
                if (!lane.ok) {
                    unique[prep.u] =
                        Outcome<RunResult>::failure(lane.error);
                    continue;
                }
                RunResult result;
                result.placement = std::move(prep.placement);
                result.stats = std::move(lane.stats);
                result.executionTime = result.stats.executionTime();
                result.loadImbalance =
                    result.placement.loadImbalance(an.threadLength());
                uniqueMillis[prep.u] = perLane;
                sinkCell(job, perLane);
                journal(job, result);
                unique[prep.u] =
                    Outcome<RunResult>::success(std::move(result));
            }
        } catch (const util::PanicError &) {
            notePanic();
        } catch (const std::exception &e) {
            // Batch-level failure (trace materialization or a
            // poisoned batch): every lane without a result yet
            // reports it.
            for (size_t i = assigned; i < preps.size(); ++i) {
                unique[preps[i].u] =
                    Outcome<RunResult>::failure(e.what());
            }
        }
    };

    util::ThreadPool pool(
        options_.jobs > 1 ? options_.jobs - 1 : 0);
    pool.parallelFor(groups.size(), [&](size_t g) {
        if (panicked.load(std::memory_order_relaxed))
            return;
        runBatch(groups[g]);
    });

    if (panic)
        std::rethrow_exception(panic);

    stats_.cancelled = cancelledCells.load();
    stats_.executed = pending.size() - stats_.cancelled;
    for (size_t u : pending) {
        if (!unique[u].ok())
            ++stats_.failed;
    }
    stats_.failed -= stats_.cancelled;  // cancelled != genuinely failed
    if (watchdog)
        stats_.watchdogFlagged =
            static_cast<size_t>(watchdog->overdueCount());

    obs::sweepCellsExecuted().add(stats_.executed);
    obs::sweepCellsFromCheckpoint().add(stats_.fromCheckpoint);
    obs::sweepCellsFailed().add(stats_.failed);

    std::vector<Outcome<RunResult>> out(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        out[i] = unique[uniqueOf[i]];
    if (options_.cellMillisOut) {
        options_.cellMillisOut->assign(jobs.size(), 0.0);
        for (size_t i = 0; i < jobs.size(); ++i)
            (*options_.cellMillisOut)[i] = uniqueMillis[uniqueOf[i]];
    }
    if (options_.statsOut)
        *options_.statsOut = stats_;
    return out;
}

std::vector<RunResult>
ParallelRunner::runAll(const std::vector<RunJob> &jobs)
{
    auto outcomes = runAllOutcomes(jobs);
    std::vector<RunResult> out(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (!outcomes[i].ok()) {
            util::fatal("sweep job " + describeJob(jobs[i]) +
                        " failed: " + outcomes[i].error());
        }
        out[i] = std::move(outcomes[i].value());
    }
    return out;
}

void
ParallelRunner::warmup(const std::vector<workload::AppId> &apps,
                       bool coherence)
{
    util::ThreadPool pool(
        options_.jobs > 1 ? options_.jobs - 1 : 0);
    pool.parallelFor(apps.size(), [&](size_t i) {
        lab_.warmup(apps[i], coherence);
    });
}

} // namespace tsp::experiment
