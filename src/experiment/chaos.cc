#include "experiment/chaos.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "experiment/checkpoint.h"
#include "experiment/configs.h"
#include "experiment/parallel.h"
#include "experiment/report.h"
#include "sim/batch_machine.h"
#include "trace/chunk_source.h"
#include "trace/trace_io.h"
#include "util/error.h"
#include "util/logging.h"
#include "workload/stream.h"

namespace tsp::experiment::chaos {

namespace {

/** Exact bit pattern of a double, so fingerprints detect any drift. */
std::string
hexBits(double v)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

/** The job set every scenario runs: two algorithms x two points. */
std::vector<RunJob>
scenarioJobs(const Options &opt, uint32_t threads)
{
    std::vector<MachinePoint> points = standardSweep(threads);
    if (points.size() > 2)
        points.resize(2);
    std::vector<RunJob> jobs;
    for (placement::Algorithm alg :
         {placement::Algorithm::LoadBal,
          placement::Algorithm::ShareRefs}) {
        for (const MachinePoint &pt : points)
            jobs.push_back({opt.app, alg, pt, false});
    }
    return jobs;
}

/**
 * Serialize every outcome's load-bearing fields. Bit-identical runs
 * produce byte-identical fingerprints; anything else diverges.
 */
std::string
fingerprint(const std::vector<RunJob> &jobs,
            const std::vector<Outcome<RunResult>> &outcomes)
{
    std::ostringstream os;
    for (size_t i = 0; i < jobs.size(); ++i) {
        os << describeJob(jobs[i]) << " => ";
        if (!outcomes[i].ok()) {
            os << "FAILED(" << outcomes[i].error() << ")\n";
            continue;
        }
        const RunResult &r = outcomes[i].value();
        os << "t=" << r.executionTime
           << " imb=" << hexBits(r.loadImbalance) << " assign=";
        for (uint32_t proc : r.placement.assignment())
            os << proc << ',';
        const sim::SimStats &s = r.stats;
        os << " refs=" << s.totalMemRefs() << " hits=" << s.totalHits();
        for (size_t k = 0; k < sim::numMissKinds; ++k) {
            os << " m" << k << '='
               << s.totalMissCount(static_cast<sim::MissKind>(k));
        }
        os << " inv=" << s.totalInvalidationsSent()
           << " upg=" << s.totalUpgrades()
           << " shc=" << s.sharingCompulsoryMisses << '\n';
    }
    return os.str();
}

/**
 * Streaming batched leg: two placement arms advance in lockstep over
 * a chunked, bounded-memory trace stream — trace.chunk_refill and
 * batch.lane live only on this path. A faulted lane degrades to an
 * error line while its sibling keeps its exact statistics; the digest
 * is folded into the scenario fingerprint so recovery legs prove the
 * streamed results are bit-stable too.
 */
std::string
streamedBatchFingerprint(Lab &lab, const Options &opt,
                         uint32_t threads)
{
    std::vector<MachinePoint> points = standardSweep(threads);
    const MachinePoint &pt = points.front();
    const placement::Algorithm algs[] = {
        placement::Algorithm::LoadBal,
        placement::Algorithm::ShareRefs};

    std::vector<sim::BatchLane> lanes;
    for (placement::Algorithm alg : algs) {
        lanes.push_back(
            {lab.configFor(opt.app, pt, false),
             lab.placementFor(opt.app, alg, pt.processors)});
    }

    workload::AppStreamFactory factory(workload::profile(opt.app),
                                       lab.scale());
    trace::SharedTraceStream stream(factory, lanes.size(),
                                    /*chunkEvents=*/2048);
    sim::BatchMachine machine(std::move(lanes), stream);
    std::vector<sim::LaneResult> results = machine.run();

    std::ostringstream os;
    for (size_t i = 0; i < results.size(); ++i) {
        os << "stream/" << placement::algorithmName(algs[i]) << '@'
           << pt.label() << " => ";
        if (!results[i].ok) {
            os << "FAILED(" << results[i].error << ")\n";
            continue;
        }
        const sim::SimStats &s = results[i].stats;
        os << "t=" << s.executionTime()
           << " refs=" << s.totalMemRefs()
           << " hits=" << s.totalHits();
        for (size_t k = 0; k < sim::numMissKinds; ++k) {
            os << " m" << k << '='
               << s.totalMissCount(static_cast<sim::MissKind>(k));
        }
        os << " inv=" << s.totalInvalidationsSent()
           << " upg=" << s.totalUpgrades() << '\n';
    }
    return os.str();
}

/**
 * The end-to-end operation each matrix cell stresses: a fresh Lab (so
 * lab.memo_init is on the path), a checkpointed parallel sweep, a
 * streamed lockstep batch, a trace save/load roundtrip, and a
 * failure-report CSV. Returns the scenario's fingerprint; throws
 * whatever the armed fault makes escape.
 */
std::string
runScenario(const Options &opt, const std::string &checkpointPath)
{
    Lab lab(opt.scale);
    const trace::TraceSet &traces = lab.traces(opt.app);
    std::vector<RunJob> jobs = scenarioJobs(
        opt, static_cast<uint32_t>(traces.threadCount()));

    Checkpoint checkpoint(checkpointPath, opt.scale);
    std::vector<JobFailure> failures;
    SweepOptions options;
    options.jobs = opt.jobs;
    options.checkpoint = &checkpoint;
    options.failures = &failures;
    ParallelRunner runner(lab, options);
    auto outcomes = runner.runAllOutcomes(jobs);

    // Trace IO roundtrip (trace.write / trace.read / trace.decode).
    std::string tracePath = opt.workDir + "/chaos_trace.tspt";
    trace::saveFile(traces, tracePath);
    trace::TraceSet loaded = trace::loadFile(tracePath);
    util::fatalIf(loaded.threadCount() != traces.threadCount(),
                  "chaos trace roundtrip lost threads");

    // Report emission (report.write).
    writeFailuresCsv(opt.workDir + "/chaos_failures.csv", failures);

    // Streamed lockstep batch (trace.chunk_refill / batch.lane).
    std::string print =
        fingerprint(jobs, outcomes) +
        streamedBatchFingerprint(
            lab, opt, static_cast<uint32_t>(traces.threadCount()));

    // Higher-layer leg (the svc daemon/store sites), when plugged in.
    if (opt.extension.run)
        print += opt.extension.run(opt.workDir);
    return print;
}

/** Delete the extension leg's on-disk state, if one is plugged in. */
void
resetExtension(const Options &opt)
{
    if (opt.extension.reset)
        opt.extension.reset(opt.workDir);
}

} // namespace

std::string
CellResult::describe() const
{
    std::string line = spec.describe();
    line += passed() ? " PASS" : " FAIL";
    if (passed())
        line += degradedCleanly ? " (degraded cleanly)"
                                : " (resumed from checkpoint)";
    else if (!note.empty())
        line += " — " + note;
    return line;
}

std::string
baselineFingerprint(const Options &options)
{
    std::string path = options.workDir + "/chaos_baseline.tspc";
    std::remove(path.c_str());
    resetExtension(options);
    std::string print = runScenario(options, path);
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    resetExtension(options);
    return print;
}

MatrixResult
runMatrix(const Options &opt)
{
    fault::disarm();
    MatrixResult matrix;
    matrix.baseline = baselineFingerprint(opt);

    std::string checkpointPath = opt.workDir + "/chaos_cell.tspc";
    for (const fault::SiteInfo &site : fault::Registry::catalog()) {
        for (fault::Kind kind : fault::allKinds()) {
            CellResult cell;
            cell.spec = {site.name, 1, false, kind};

            // Fresh journal per cell so recovery is attributable.
            // The extension's state is reset here too, but NOT
            // between the faulted run and the recovery leg — the
            // recovery leg resumes over whatever survived, proving
            // the extension's artifacts are crash-resumable.
            std::remove(checkpointPath.c_str());
            std::remove((checkpointPath + ".tmp").c_str());
            resetExtension(opt);

            uint64_t injectedBefore =
                fault::Registry::instance().injectedCount();
            fault::Registry::instance().arm(cell.spec);
            try {
                runScenario(opt, checkpointPath);
                cell.degradedCleanly = true;
            } catch (const std::exception &e) {
                // Not clean — leg 2 of the trifecta now rests on the
                // checkpoint the run left behind.
                cell.escapedError = e.what();
            }
            fault::disarm();
            cell.fired = fault::Registry::instance().injectedCount() >
                         injectedBefore;

            if (!cell.fired) {
                cell.note = "armed site never fired (catalog/wiring "
                            "drift?)";
            } else {
                // Leg 3: fault-free re-run over whatever survived must
                // reproduce the baseline bit for bit.
                try {
                    std::string resumed =
                        runScenario(opt, checkpointPath);
                    cell.recoveredIdentical =
                        resumed == matrix.baseline;
                    if (!cell.recoveredIdentical)
                        cell.note = "resumed results diverge from the "
                                    "baseline";
                } catch (const std::exception &e) {
                    cell.note = std::string(
                                    "fault-free resume threw: ") +
                                e.what();
                }
            }

            if (opt.verbose)
                util::inform("[chaos] " + cell.describe());
            matrix.cells.push_back(std::move(cell));
        }
    }

    std::remove(checkpointPath.c_str());
    std::remove((checkpointPath + ".tmp").c_str());
    resetExtension(opt);
    return matrix;
}

} // namespace tsp::experiment::chaos
