#include "experiment/studies.h"

#include <map>

#include "util/error.h"
#include "util/rng.h"

namespace tsp::experiment {

using placement::Algorithm;
using workload::AppId;

std::vector<ExecTimePoint>
execTimeStudy(Lab &lab, AppId app,
              const std::vector<Algorithm> &algs)
{
    const uint32_t threads =
        static_cast<uint32_t>(lab.analysis(app).threadCount());
    std::vector<ExecTimePoint> out;
    for (const MachinePoint &point : standardSweep(threads)) {
        RunResult random = lab.run(app, Algorithm::Random, point);
        util::fatalIf(random.executionTime == 0,
                      "RANDOM baseline ran for zero cycles");
        for (Algorithm alg : algs) {
            ExecTimePoint pt;
            pt.alg = alg;
            pt.point = point;
            if (alg == Algorithm::Random) {
                pt.cycles = random.executionTime;
                pt.loadImbalance = random.loadImbalance;
            } else {
                RunResult r = lab.run(app, alg, point);
                pt.cycles = r.executionTime;
                pt.loadImbalance = r.loadImbalance;
            }
            pt.normalizedToRandom =
                static_cast<double>(pt.cycles) /
                static_cast<double>(random.executionTime);
            out.push_back(pt);
        }
    }
    return out;
}

std::vector<MissComponentRow>
missComponentStudy(Lab &lab, AppId app,
                   const std::vector<Algorithm> &algs)
{
    const uint32_t threads =
        static_cast<uint32_t>(lab.analysis(app).threadCount());
    std::vector<MissComponentRow> out;
    for (const MachinePoint &point : standardSweep(threads)) {
        for (Algorithm alg : algs) {
            RunResult r = lab.run(app, alg, point);
            MissComponentRow row;
            row.alg = alg;
            row.point = point;
            row.compulsory =
                r.stats.totalMissCount(sim::MissKind::Compulsory);
            row.intraConflict =
                r.stats.totalMissCount(sim::MissKind::IntraConflict);
            row.interConflict =
                r.stats.totalMissCount(sim::MissKind::InterConflict);
            row.invalidation =
                r.stats.totalMissCount(sim::MissKind::Invalidation);
            row.refs = r.stats.totalMemRefs();
            out.push_back(row);
        }
    }
    return out;
}

Table4Row
table4Row(Lab &lab, AppId app)
{
    Table4Row row;
    row.app = workload::appName(app);

    const auto &an = lab.analysis(app);
    auto staticSummary = an.sharedRefs().pairSummary();
    row.staticPairMean = staticSummary.mean();
    row.staticTotal = an.sharedRefs().total();
    row.staticPctOfRefs =
        100.0 * row.staticTotal / static_cast<double>(an.totalRefs());

    const auto &dynStats = lab.coherenceStats(app);
    auto dynSummary = dynStats.coherencePairs.pairSummary();
    row.dynamicTotal =
        static_cast<double>(dynStats.dynamicSharingTraffic());
    row.dynamicPctOfRefs = 100.0 * row.dynamicTotal /
                           static_cast<double>(an.totalRefs());
    row.dynamicPairDevPct = dynSummary.devPercent();
    row.dynamicPairAbsDev = dynSummary.absoluteDeviation();
    row.staticOverDynamic = row.dynamicTotal > 0.0
        ? row.staticTotal / row.dynamicTotal
        : 0.0;
    return row;
}

std::vector<Table5Cell>
table5Study(Lab &lab, AppId app)
{
    const uint32_t threads =
        static_cast<uint32_t>(lab.analysis(app).threadCount());
    std::vector<Table5Cell> out;
    for (const MachinePoint &point : standardSweep(threads)) {
        RunResult loadBal =
            lab.run(app, Algorithm::LoadBal, point, true);
        util::fatalIf(loadBal.executionTime == 0,
                      "LOAD-BAL baseline ran for zero cycles");

        Table5Cell cell;
        cell.app = workload::appName(app);
        cell.processors = point.processors;

        double best = 0.0;
        bool first = true;
        for (Algorithm alg :
             placement::staticSharingAlgorithmsWithLB()) {
            RunResult r = lab.run(app, alg, point, true);
            double norm = static_cast<double>(r.executionTime) /
                          static_cast<double>(loadBal.executionTime);
            if (first || norm < best) {
                best = norm;
                cell.bestStatic = alg;
                first = false;
            }
        }
        cell.bestStaticVsLoadBal = best;

        RunResult coh =
            lab.run(app, Algorithm::CoherenceTraffic, point, true);
        cell.coherenceVsLoadBal =
            static_cast<double>(coh.executionTime) /
            static_cast<double>(loadBal.executionTime);
        out.push_back(cell);
    }
    return out;
}

analysis::CharacteristicsRow
table2Row(Lab &lab, AppId app)
{
    util::Rng rng(0xC0FFEEull + static_cast<uint64_t>(app));
    return analysis::computeCharacteristics(lab.analysis(app), rng);
}

} // namespace tsp::experiment
