#include "experiment/studies.h"

#include <map>

#include "experiment/parallel.h"
#include "sim/results.h"
#include "util/error.h"
#include "util/rng.h"

namespace tsp::experiment {

using placement::Algorithm;
using workload::AppId;

namespace {

/**
 * Post-process a fan-out's outcomes: in strict mode (no failures
 * sink) rethrow the first (input-order) failure; in degraded mode
 * append every failed job to the sink and let the caller mark cells.
 */
void
collectFailures(const std::vector<RunJob> &fanout,
                const std::vector<Outcome<RunResult>> &outcomes,
                std::vector<JobFailure> *failures)
{
    for (size_t i = 0; i < fanout.size(); ++i) {
        if (outcomes[i].ok())
            continue;
        if (!failures) {
            util::fatal("sweep job " + describeJob(fanout[i]) +
                        " failed: " + outcomes[i].error());
        }
        failures->push_back({fanout[i], outcomes[i].error()});
    }
}

} // namespace

std::vector<ExecTimePoint>
execTimeStudy(Lab &lab, AppId app,
              const std::vector<Algorithm> &algs,
              const SweepOptions &options)
{
    const analysis::StaticAnalysis &an = lab.analysis(app);
    const auto sweep =
        standardSweep(static_cast<uint32_t>(an.threadCount()));

    // Job layout: per point, the RANDOM baseline then every non-RANDOM
    // algorithm (RANDOM rows reuse the baseline, like the serial loop
    // always did).
    std::vector<RunJob> fanout;
    std::vector<size_t> randomIdx(sweep.size());
    std::vector<std::vector<size_t>> algIdx(sweep.size());
    for (size_t p = 0; p < sweep.size(); ++p) {
        randomIdx[p] = fanout.size();
        fanout.push_back({app, Algorithm::Random, sweep[p], false});
        algIdx[p].reserve(algs.size());
        for (Algorithm alg : algs) {
            if (alg == Algorithm::Random) {
                algIdx[p].push_back(randomIdx[p]);
            } else {
                algIdx[p].push_back(fanout.size());
                fanout.push_back({app, alg, sweep[p], false});
            }
        }
    }

    // The fan-out's layout is internal, so per-cell timing goes
    // through a local vector and lands on rows as `wallMs`.
    std::vector<double> cellMillis;
    SweepOptions runOptions = options;
    runOptions.cellMillisOut = &cellMillis;
    auto outcomes =
        ParallelRunner(lab, runOptions).runAllOutcomes(fanout);
    collectFailures(fanout, outcomes, options.failures);
    if (options.cellMillisOut)
        *options.cellMillisOut = cellMillis;

    std::vector<ExecTimePoint> out;
    out.reserve(sweep.size() * algs.size());
    for (size_t p = 0; p < sweep.size(); ++p) {
        const auto &baseline = outcomes[randomIdx[p]];
        for (size_t a = 0; a < algs.size(); ++a) {
            const auto &oc = outcomes[algIdx[p][a]];
            ExecTimePoint pt;
            pt.alg = algs[a];
            pt.point = sweep[p];
            pt.wallMs = cellMillis[algIdx[p][a]];
            if (!oc.ok()) {
                pt.failed = true;
                pt.error = oc.error();
            } else {
                const RunResult &r = oc.value();
                pt.cycles = r.executionTime;
                pt.loadImbalance = r.loadImbalance;
                if (!baseline.ok()) {
                    // The cell ran but has nothing to normalize to.
                    pt.failed = true;
                    pt.error = "RANDOM baseline failed: " +
                               baseline.error();
                } else {
                    const RunResult &random = baseline.value();
                    util::fatalIf(
                        random.executionTime == 0,
                        "RANDOM baseline ran for zero cycles");
                    pt.normalizedToRandom =
                        static_cast<double>(pt.cycles) /
                        static_cast<double>(random.executionTime);
                }
            }
            out.push_back(pt);
        }
    }
    return out;
}

std::vector<ExecTimePoint>
execTimeStudy(Lab &lab, AppId app,
              const std::vector<Algorithm> &algs, unsigned jobs)
{
    SweepOptions options;
    options.jobs = jobs;
    return execTimeStudy(lab, app, algs, options);
}

std::vector<MissComponentRow>
missComponentStudy(Lab &lab, AppId app,
                   const std::vector<Algorithm> &algs,
                   const SweepOptions &options)
{
    const analysis::StaticAnalysis &an = lab.analysis(app);
    const auto sweep =
        standardSweep(static_cast<uint32_t>(an.threadCount()));

    std::vector<RunJob> fanout;
    fanout.reserve(sweep.size() * algs.size());
    for (const MachinePoint &point : sweep)
        for (Algorithm alg : algs)
            fanout.push_back({app, alg, point, false});

    std::vector<double> cellMillis;
    SweepOptions runOptions = options;
    runOptions.cellMillisOut = &cellMillis;
    auto outcomes =
        ParallelRunner(lab, runOptions).runAllOutcomes(fanout);
    collectFailures(fanout, outcomes, options.failures);
    if (options.cellMillisOut)
        *options.cellMillisOut = cellMillis;

    std::vector<MissComponentRow> out;
    out.reserve(fanout.size());
    for (size_t i = 0; i < fanout.size(); ++i) {
        MissComponentRow row;
        row.alg = fanout[i].alg;
        row.point = fanout[i].point;
        row.wallMs = cellMillis[i];
        if (!outcomes[i].ok()) {
            row.failed = true;
            row.error = outcomes[i].error();
        } else {
            const RunResult &r = outcomes[i].value();
            row.compulsory =
                r.stats.totalMissCount(sim::MissKind::Compulsory);
            row.intraConflict =
                r.stats.totalMissCount(sim::MissKind::IntraConflict);
            row.interConflict =
                r.stats.totalMissCount(sim::MissKind::InterConflict);
            row.invalidation =
                r.stats.totalMissCount(sim::MissKind::Invalidation);
            row.refs = r.stats.totalMemRefs();
        }
        out.push_back(row);
    }
    return out;
}

std::vector<MissComponentRow>
missComponentStudy(Lab &lab, AppId app,
                   const std::vector<Algorithm> &algs, unsigned jobs)
{
    SweepOptions options;
    options.jobs = jobs;
    return missComponentStudy(lab, app, algs, options);
}

std::vector<HierarchyPoint>
hierarchyStudy(Lab &lab, AppId app,
               const std::vector<Algorithm> &algs,
               const SweepOptions &options)
{
    const analysis::StaticAnalysis &an = lab.analysis(app);
    const auto sweep =
        standardSweep(static_cast<uint32_t>(an.threadCount()));
    const auto systems = allMemSystems();

    // Job layout mirrors execTimeStudy, once per memory system: per
    // (system, point), the RANDOM baseline then every non-RANDOM
    // algorithm. RANDOM rows reuse the baseline.
    std::vector<RunJob> fanout;
    std::vector<std::vector<size_t>> randomIdx(systems.size());
    std::vector<std::vector<std::vector<size_t>>> algIdx(
        systems.size());
    for (size_t m = 0; m < systems.size(); ++m) {
        randomIdx[m].resize(sweep.size());
        algIdx[m].resize(sweep.size());
        for (size_t p = 0; p < sweep.size(); ++p) {
            randomIdx[m][p] = fanout.size();
            fanout.push_back({app, Algorithm::Random, sweep[p],
                              false, systems[m]});
            algIdx[m][p].reserve(algs.size());
            for (Algorithm alg : algs) {
                if (alg == Algorithm::Random) {
                    algIdx[m][p].push_back(randomIdx[m][p]);
                } else {
                    algIdx[m][p].push_back(fanout.size());
                    fanout.push_back(
                        {app, alg, sweep[p], false, systems[m]});
                }
            }
        }
    }

    std::vector<double> cellMillis;
    SweepOptions runOptions = options;
    runOptions.cellMillisOut = &cellMillis;
    auto outcomes =
        ParallelRunner(lab, runOptions).runAllOutcomes(fanout);
    collectFailures(fanout, outcomes, options.failures);
    if (options.cellMillisOut)
        *options.cellMillisOut = cellMillis;

    std::vector<HierarchyPoint> out;
    out.reserve(systems.size() * sweep.size() * algs.size());
    for (size_t m = 0; m < systems.size(); ++m) {
        for (size_t p = 0; p < sweep.size(); ++p) {
            const auto &baseline = outcomes[randomIdx[m][p]];
            for (size_t a = 0; a < algs.size(); ++a) {
                const auto &oc = outcomes[algIdx[m][p][a]];
                HierarchyPoint pt;
                pt.memSystem = systems[m];
                pt.alg = algs[a];
                pt.point = sweep[p];
                pt.wallMs = cellMillis[algIdx[m][p][a]];
                if (!oc.ok()) {
                    pt.failed = true;
                    pt.error = oc.error();
                } else {
                    const RunResult &r = oc.value();
                    pt.cycles = r.executionTime;
                    pt.l2Hits = r.stats.l2Hits;
                    pt.l2Misses = r.stats.l2Misses;
                    pt.netQueueingCycles =
                        r.stats.networkQueueingCycles;
                    if (!baseline.ok()) {
                        pt.failed = true;
                        pt.error = "RANDOM baseline failed: " +
                                   baseline.error();
                    } else {
                        const RunResult &random = baseline.value();
                        util::fatalIf(
                            random.executionTime == 0,
                            "RANDOM baseline ran for zero cycles");
                        pt.normalizedToRandom =
                            static_cast<double>(pt.cycles) /
                            static_cast<double>(
                                random.executionTime);
                    }
                }
                out.push_back(pt);
            }
        }
    }
    return out;
}

std::vector<HierarchyPoint>
hierarchyStudy(Lab &lab, AppId app,
               const std::vector<Algorithm> &algs, unsigned jobs)
{
    SweepOptions options;
    options.jobs = jobs;
    return hierarchyStudy(lab, app, algs, options);
}

Table4Row
table4Row(Lab &lab, AppId app)
{
    Table4Row row;
    row.app = workload::appName(app);

    const auto &an = lab.analysis(app);
    auto staticSummary = an.sharedRefs().pairSummary();
    row.staticPairMean = staticSummary.mean();
    row.staticTotal = an.sharedRefs().total();
    row.staticPctOfRefs =
        100.0 * row.staticTotal / static_cast<double>(an.totalRefs());

    const auto &dynStats = lab.coherenceStats(app);
    auto dynSummary = dynStats.coherencePairs.pairSummary();
    row.dynamicTotal =
        static_cast<double>(dynStats.dynamicSharingTraffic());
    row.dynamicPctOfRefs = 100.0 * row.dynamicTotal /
                           static_cast<double>(an.totalRefs());
    row.dynamicPairDevPct = dynSummary.devPercent();
    row.dynamicPairAbsDev = dynSummary.absoluteDeviation();
    row.staticOverDynamic = row.dynamicTotal > 0.0
        ? row.staticTotal / row.dynamicTotal
        : 0.0;
    return row;
}

std::vector<Table4Row>
table4Study(Lab &lab, const std::vector<AppId> &apps, unsigned jobs)
{
    // The row math is trivial; the traces + analysis + coherence
    // probe behind it are not. Materialize those one app per worker,
    // then fold the rows serially in input order.
    ParallelRunner(lab, jobs).warmup(apps, /*coherence=*/true);
    std::vector<Table4Row> rows;
    rows.reserve(apps.size());
    for (AppId app : apps)
        rows.push_back(table4Row(lab, app));
    return rows;
}

std::vector<Table5Cell>
table5Study(Lab &lab, AppId app, const SweepOptions &options)
{
    const analysis::StaticAnalysis &an = lab.analysis(app);
    const auto sweep =
        standardSweep(static_cast<uint32_t>(an.threadCount()));
    const auto &pool = placement::staticSharingAlgorithmsWithLB();

    std::vector<RunJob> fanout;
    std::vector<size_t> loadBalIdx(sweep.size());
    std::vector<size_t> cohIdx(sweep.size());
    std::vector<std::vector<size_t>> poolIdx(sweep.size());
    for (size_t p = 0; p < sweep.size(); ++p) {
        loadBalIdx[p] = fanout.size();
        fanout.push_back({app, Algorithm::LoadBal, sweep[p], true});
        poolIdx[p].reserve(pool.size());
        for (Algorithm alg : pool) {
            poolIdx[p].push_back(fanout.size());
            fanout.push_back({app, alg, sweep[p], true});
        }
        cohIdx[p] = fanout.size();
        fanout.push_back(
            {app, Algorithm::CoherenceTraffic, sweep[p], true});
    }

    auto outcomes =
        ParallelRunner(lab, options).runAllOutcomes(fanout);
    collectFailures(fanout, outcomes, options.failures);

    std::vector<Table5Cell> out;
    out.reserve(sweep.size());
    for (size_t p = 0; p < sweep.size(); ++p) {
        Table5Cell cell;
        cell.app = workload::appName(app);
        cell.processors = sweep[p].processors;

        const auto &loadBalOc = outcomes[loadBalIdx[p]];
        if (!loadBalOc.ok()) {
            cell.failed = true;
            cell.error =
                "LOAD-BAL baseline failed: " + loadBalOc.error();
            out.push_back(cell);
            continue;
        }
        const RunResult &loadBal = loadBalOc.value();
        util::fatalIf(loadBal.executionTime == 0,
                      "LOAD-BAL baseline ran for zero cycles");

        double best = 0.0;
        bool first = true;
        for (size_t a = 0; a < pool.size(); ++a) {
            const auto &oc = outcomes[poolIdx[p][a]];
            if (!oc.ok())
                continue;  // failed algorithm: out of the contest
            double norm =
                static_cast<double>(oc.value().executionTime) /
                static_cast<double>(loadBal.executionTime);
            if (first || norm < best) {
                best = norm;
                cell.bestStatic = pool[a];
                first = false;
            }
        }
        if (first) {
            cell.failed = true;
            cell.error = "every static sharing algorithm failed";
            out.push_back(cell);
            continue;
        }
        cell.bestStaticVsLoadBal = best;

        const auto &cohOc = outcomes[cohIdx[p]];
        if (!cohOc.ok()) {
            cell.failed = true;
            cell.error =
                "COHERENCE-TRAFFIC failed: " + cohOc.error();
        } else {
            cell.coherenceVsLoadBal =
                static_cast<double>(cohOc.value().executionTime) /
                static_cast<double>(loadBal.executionTime);
        }
        out.push_back(cell);
    }
    return out;
}

std::vector<Table5Cell>
table5Study(Lab &lab, AppId app, unsigned jobs)
{
    SweepOptions options;
    options.jobs = jobs;
    return table5Study(lab, app, options);
}

analysis::CharacteristicsRow
table2Row(Lab &lab, AppId app)
{
    util::Rng rng(0xC0FFEEull + static_cast<uint64_t>(app));
    return analysis::computeCharacteristics(lab.analysis(app), rng);
}

} // namespace tsp::experiment
