#include "experiment/studies.h"

#include <map>

#include "experiment/parallel.h"
#include "sim/results.h"
#include "util/error.h"
#include "util/rng.h"

namespace tsp::experiment {

using placement::Algorithm;
using workload::AppId;

std::vector<ExecTimePoint>
execTimeStudy(Lab &lab, AppId app,
              const std::vector<Algorithm> &algs, unsigned jobs)
{
    const analysis::StaticAnalysis &an = lab.analysis(app);
    const auto sweep =
        standardSweep(static_cast<uint32_t>(an.threadCount()));

    // Job layout: per point, the RANDOM baseline then every non-RANDOM
    // algorithm (RANDOM rows reuse the baseline, like the serial loop
    // always did).
    std::vector<RunJob> fanout;
    std::vector<size_t> randomIdx(sweep.size());
    std::vector<std::vector<size_t>> algIdx(sweep.size());
    for (size_t p = 0; p < sweep.size(); ++p) {
        randomIdx[p] = fanout.size();
        fanout.push_back({app, Algorithm::Random, sweep[p], false});
        algIdx[p].reserve(algs.size());
        for (Algorithm alg : algs) {
            if (alg == Algorithm::Random) {
                algIdx[p].push_back(randomIdx[p]);
            } else {
                algIdx[p].push_back(fanout.size());
                fanout.push_back({app, alg, sweep[p], false});
            }
        }
    }

    auto results = ParallelRunner(lab, jobs).runAll(fanout);

    std::vector<ExecTimePoint> out;
    out.reserve(sweep.size() * algs.size());
    for (size_t p = 0; p < sweep.size(); ++p) {
        const RunResult &random = results[randomIdx[p]];
        util::fatalIf(random.executionTime == 0,
                      "RANDOM baseline ran for zero cycles");
        for (size_t a = 0; a < algs.size(); ++a) {
            const RunResult &r = results[algIdx[p][a]];
            ExecTimePoint pt;
            pt.alg = algs[a];
            pt.point = sweep[p];
            pt.cycles = r.executionTime;
            pt.loadImbalance = r.loadImbalance;
            pt.normalizedToRandom =
                static_cast<double>(pt.cycles) /
                static_cast<double>(random.executionTime);
            out.push_back(pt);
        }
    }
    return out;
}

std::vector<MissComponentRow>
missComponentStudy(Lab &lab, AppId app,
                   const std::vector<Algorithm> &algs, unsigned jobs)
{
    const analysis::StaticAnalysis &an = lab.analysis(app);
    const auto sweep =
        standardSweep(static_cast<uint32_t>(an.threadCount()));

    std::vector<RunJob> fanout;
    fanout.reserve(sweep.size() * algs.size());
    for (const MachinePoint &point : sweep)
        for (Algorithm alg : algs)
            fanout.push_back({app, alg, point, false});

    auto results = ParallelRunner(lab, jobs).runAll(fanout);

    std::vector<MissComponentRow> out;
    out.reserve(fanout.size());
    for (size_t i = 0; i < fanout.size(); ++i) {
        const RunResult &r = results[i];
        MissComponentRow row;
        row.alg = fanout[i].alg;
        row.point = fanout[i].point;
        row.compulsory =
            r.stats.totalMissCount(sim::MissKind::Compulsory);
        row.intraConflict =
            r.stats.totalMissCount(sim::MissKind::IntraConflict);
        row.interConflict =
            r.stats.totalMissCount(sim::MissKind::InterConflict);
        row.invalidation =
            r.stats.totalMissCount(sim::MissKind::Invalidation);
        row.refs = r.stats.totalMemRefs();
        out.push_back(row);
    }
    return out;
}

Table4Row
table4Row(Lab &lab, AppId app)
{
    Table4Row row;
    row.app = workload::appName(app);

    const auto &an = lab.analysis(app);
    auto staticSummary = an.sharedRefs().pairSummary();
    row.staticPairMean = staticSummary.mean();
    row.staticTotal = an.sharedRefs().total();
    row.staticPctOfRefs =
        100.0 * row.staticTotal / static_cast<double>(an.totalRefs());

    const auto &dynStats = lab.coherenceStats(app);
    auto dynSummary = dynStats.coherencePairs.pairSummary();
    row.dynamicTotal =
        static_cast<double>(dynStats.dynamicSharingTraffic());
    row.dynamicPctOfRefs = 100.0 * row.dynamicTotal /
                           static_cast<double>(an.totalRefs());
    row.dynamicPairDevPct = dynSummary.devPercent();
    row.dynamicPairAbsDev = dynSummary.absoluteDeviation();
    row.staticOverDynamic = row.dynamicTotal > 0.0
        ? row.staticTotal / row.dynamicTotal
        : 0.0;
    return row;
}

std::vector<Table4Row>
table4Study(Lab &lab, const std::vector<AppId> &apps, unsigned jobs)
{
    // The row math is trivial; the traces + analysis + coherence
    // probe behind it are not. Materialize those one app per worker,
    // then fold the rows serially in input order.
    ParallelRunner(lab, jobs).warmup(apps, /*coherence=*/true);
    std::vector<Table4Row> rows;
    rows.reserve(apps.size());
    for (AppId app : apps)
        rows.push_back(table4Row(lab, app));
    return rows;
}

std::vector<Table5Cell>
table5Study(Lab &lab, AppId app, unsigned jobs)
{
    const analysis::StaticAnalysis &an = lab.analysis(app);
    const auto sweep =
        standardSweep(static_cast<uint32_t>(an.threadCount()));
    const auto &pool = placement::staticSharingAlgorithmsWithLB();

    std::vector<RunJob> fanout;
    std::vector<size_t> loadBalIdx(sweep.size());
    std::vector<size_t> cohIdx(sweep.size());
    std::vector<std::vector<size_t>> poolIdx(sweep.size());
    for (size_t p = 0; p < sweep.size(); ++p) {
        loadBalIdx[p] = fanout.size();
        fanout.push_back({app, Algorithm::LoadBal, sweep[p], true});
        poolIdx[p].reserve(pool.size());
        for (Algorithm alg : pool) {
            poolIdx[p].push_back(fanout.size());
            fanout.push_back({app, alg, sweep[p], true});
        }
        cohIdx[p] = fanout.size();
        fanout.push_back(
            {app, Algorithm::CoherenceTraffic, sweep[p], true});
    }

    auto results = ParallelRunner(lab, jobs).runAll(fanout);

    std::vector<Table5Cell> out;
    out.reserve(sweep.size());
    for (size_t p = 0; p < sweep.size(); ++p) {
        const RunResult &loadBal = results[loadBalIdx[p]];
        util::fatalIf(loadBal.executionTime == 0,
                      "LOAD-BAL baseline ran for zero cycles");

        Table5Cell cell;
        cell.app = workload::appName(app);
        cell.processors = sweep[p].processors;

        double best = 0.0;
        bool first = true;
        for (size_t a = 0; a < pool.size(); ++a) {
            const RunResult &r = results[poolIdx[p][a]];
            double norm =
                static_cast<double>(r.executionTime) /
                static_cast<double>(loadBal.executionTime);
            if (first || norm < best) {
                best = norm;
                cell.bestStatic = pool[a];
                first = false;
            }
        }
        cell.bestStaticVsLoadBal = best;

        const RunResult &coh = results[cohIdx[p]];
        cell.coherenceVsLoadBal =
            static_cast<double>(coh.executionTime) /
            static_cast<double>(loadBal.executionTime);
        out.push_back(cell);
    }
    return out;
}

analysis::CharacteristicsRow
table2Row(Lab &lab, AppId app)
{
    util::Rng rng(0xC0FFEEull + static_cast<uint64_t>(app));
    return analysis::computeCharacteristics(lab.analysis(app), rng);
}

} // namespace tsp::experiment
