/**
 * @file
 * Crash-safe checkpoint/resume for experiment sweeps.
 *
 * A Checkpoint journals every completed (app x algorithm x point) run
 * result to an on-disk file so a killed multi-hour sweep resumes by
 * replaying the journal and simulating only the missing cells.
 *
 * File format ("TSPC", version 2, little-endian; version 2 added the
 * memory-system variant to the job key and the shared-L2 counters to
 * the serialized statistics — older journals are rejected with a
 * clear error rather than silently misread):
 *
 *     magic "TSPC" | u32 version | u32 workload scale
 *     record*:  u32 payloadBytes | u32 crc32(payload) | payload
 *
 * The payload serializes the job key and the full RunResult (placement
 * map, per-processor statistics, coherence pair matrix, sharing
 * profile), bit-exactly, so a replayed sweep's report is identical to
 * an uninterrupted run.
 *
 * Durability strategy: every append rewrites the journal to a sibling
 * `.tmp` file and renames it over the original (an atomic publish on
 * POSIX), with bounded retry on transient filesystem failures. On
 * load, a truncated or corrupt trailing record — the signature of a
 * kill mid-append — is detected by its length/CRC frame and dropped
 * with a warning; every intact record before it is recovered.
 */

#ifndef TSP_EXPERIMENT_CHECKPOINT_H
#define TSP_EXPERIMENT_CHECKPOINT_H

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "experiment/lab.h"

namespace tsp::experiment {

struct RunJob;

/** Append-only, checksummed journal of completed sweep cells. */
class Checkpoint
{
  public:
    /**
     * Open (or create) the journal at @p path for a lab at workload
     * @p scale. Replays every intact record; throws FatalError when
     * the file exists but is not a TSPC journal or was written at a
     * different scale (its results would not be comparable).
     */
    Checkpoint(std::string path, uint32_t scale);

    /** The journal path. */
    const std::string &path() const { return path_; }

    /** The workload scale the journal is bound to. */
    uint32_t scale() const { return scale_; }

    /** Number of completed job results currently journaled. */
    size_t size() const;

    /** Bytes of truncated/corrupt trailing data dropped on load. */
    uint64_t droppedBytes() const { return dropped_; }

    /** The journaled result of @p job, if any. Thread-safe. */
    std::optional<RunResult> lookup(const RunJob &job) const;

    /**
     * Journal @p result for @p job and persist. Idempotent (a
     * duplicate key is a no-op) and thread-safe; throws FatalError if
     * the journal cannot be persisted after bounded retries.
     */
    void record(const RunJob &job, const RunResult &result);

  private:
    struct Key
    {
        uint32_t app = 0;
        uint32_t alg = 0;
        uint32_t processors = 0;
        uint32_t contexts = 0;
        uint8_t infiniteCache = 0;
        uint8_t memSystem = 0;

        auto operator<=>(const Key &) const = default;
    };

    static Key keyOf(const RunJob &job);
    void load();
    void persist() const;

    std::string path_;
    uint32_t scale_;
    uint64_t dropped_ = 0;

    mutable std::mutex mutex_;
    std::map<Key, RunResult> results_;
    std::string journal_;  //!< serialized header + intact records
};

} // namespace tsp::experiment

#endif // TSP_EXPERIMENT_CHECKPOINT_H
