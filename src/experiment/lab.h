/**
 * @file
 * The experiment runner: memoizes per-application traces, static
 * analyses and measured coherence matrices, and runs (application x
 * placement algorithm x machine point) simulations reproducibly.
 */

#ifndef TSP_EXPERIMENT_LAB_H
#define TSP_EXPERIMENT_LAB_H

#include <map>
#include <memory>

#include "analysis/static_analysis.h"
#include "core/algorithms.h"
#include "experiment/configs.h"
#include "sim/coherence_probe.h"
#include "sim/config.h"
#include "sim/results.h"
#include "workload/suite.h"

namespace tsp::experiment {

/** Result of one placement + simulation run. */
struct RunResult
{
    placement::PlacementMap placement;
    sim::SimStats stats;

    /** Paper's figure of merit. */
    uint64_t executionTime = 0;

    /** Max processor load over ideal (1.0 = perfect balance). */
    double loadImbalance = 1.0;
};

/**
 * A Lab binds a workload scale and caches everything derivable from
 * it. All results are deterministic: the RANDOM placement's seed is a
 * hash of (application, algorithm, processors).
 */
class Lab
{
  public:
    /** @param scale workload scale (power of two; 1 = full size). */
    explicit Lab(uint32_t scale);

    /** The bound workload scale. */
    uint32_t scale() const { return scale_; }

    /** Generated traces of @p app (memoized). */
    const trace::TraceSet &traces(workload::AppId app);

    /** Static analysis of @p app (memoized). */
    const analysis::StaticAnalysis &analysis(workload::AppId app);

    /**
     * Thread-pair coherence traffic of @p app, measured with one
     * thread per processor (memoized; Section 4.2).
     */
    const stats::PairMatrix &coherenceMatrix(workload::AppId app);

    /** Full statistics of the coherence measurement run (memoized). */
    const sim::SimStats &coherenceStats(workload::AppId app);

    /** Architectural configuration for @p app at @p point. */
    sim::SimConfig configFor(workload::AppId app,
                             const MachinePoint &point,
                             bool infiniteCache = false) const;

    /** Build the placement of @p alg for @p app on @p processors. */
    placement::PlacementMap placementFor(workload::AppId app,
                                         placement::Algorithm alg,
                                         uint32_t processors);

    /** Place with @p alg and simulate @p app at @p point. */
    RunResult run(workload::AppId app, placement::Algorithm alg,
                  const MachinePoint &point,
                  bool infiniteCache = false);

  private:
    uint32_t scale_;
    std::map<workload::AppId,
             std::shared_ptr<const trace::TraceSet>> traces_;
    std::map<workload::AppId,
             std::unique_ptr<analysis::StaticAnalysis>> analyses_;
    std::map<workload::AppId,
             std::unique_ptr<sim::CoherenceProbeResult>> probes_;
};

} // namespace tsp::experiment

#endif // TSP_EXPERIMENT_LAB_H
