/**
 * @file
 * The experiment runner: memoizes per-application traces, static
 * analyses and measured coherence matrices, and runs (application x
 * placement algorithm x machine point) simulations reproducibly.
 */

#ifndef TSP_EXPERIMENT_LAB_H
#define TSP_EXPERIMENT_LAB_H

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "analysis/static_analysis.h"
#include "core/algorithms.h"
#include "experiment/configs.h"
#include "sim/coherence_probe.h"
#include "sim/config.h"
#include "sim/results.h"
#include "workload/suite.h"

namespace tsp::experiment {

/**
 * Per-run miss-component and coherence-message totals, so sweep
 * consumers read one struct instead of re-aggregating SimStats'
 * per-processor counters kind by kind.
 */
struct RunMissSummary
{
    uint64_t compulsory = 0;
    uint64_t intraConflict = 0;
    uint64_t interConflict = 0;
    uint64_t invalidation = 0;
    uint64_t memRefs = 0;

    uint64_t invalidationsSent = 0;  //!< directory coherence messages
    uint64_t upgrades = 0;           //!< write-hit upgrade transactions

    uint64_t
    totalMisses() const
    {
        return compulsory + intraConflict + interConflict +
               invalidation;
    }
};

/** Result of one placement + simulation run. */
struct RunResult
{
    placement::PlacementMap placement;
    sim::SimStats stats;

    /** Paper's figure of merit. */
    uint64_t executionTime = 0;

    /** Max processor load over ideal (1.0 = perfect balance). */
    double loadImbalance = 1.0;

    /**
     * This run's miss components and coherence messages (derived from
     * @ref stats on demand, so checkpointed results replay it too).
     */
    RunMissSummary missSummary() const;
};

/**
 * A Lab binds a workload scale and caches everything derivable from
 * it. All results are deterministic: the RANDOM placement's seed is a
 * hash of (application, algorithm, processors).
 *
 * Thread-safety contract: every public method may be called from any
 * number of threads concurrently. The lazy caches use per-key
 * once-initialization — the first caller of traces()/analysis()/
 * coherenceStats() for an application materializes the artifact while
 * concurrent callers for the *same* application block on it and then
 * share the one cached instance; callers for *different* applications
 * proceed in parallel. Returned references stay valid for the Lab's
 * lifetime (entries are never evicted).
 */
class Lab
{
  public:
    /** @param scale workload scale (power of two; 1 = full size). */
    explicit Lab(uint32_t scale);

    /** The bound workload scale. */
    uint32_t scale() const { return scale_; }

    /** Generated traces of @p app (memoized). */
    const trace::TraceSet &traces(workload::AppId app);

    /** Static analysis of @p app (memoized). */
    const analysis::StaticAnalysis &analysis(workload::AppId app);

    /**
     * Per-thread dynamic instruction lengths of @p app — the cached
     * vector inside analysis(app); exposed so hot loops do not repeat
     * the analysis lookup per run.
     */
    const std::vector<uint64_t> &threadLength(workload::AppId app);

    /**
     * Thread-pair coherence traffic of @p app, measured with one
     * thread per processor (memoized; Section 4.2).
     */
    const stats::PairMatrix &coherenceMatrix(workload::AppId app);

    /** Full statistics of the coherence measurement run (memoized). */
    const sim::SimStats &coherenceStats(workload::AppId app);

    /**
     * Pre-materialize the cached artifacts of @p app (traces and
     * analysis; the coherence probe too when @p coherence). Purely an
     * optimization — the lazy path computes the same values — used by
     * ParallelRunner to overlap per-app materialization across a pool
     * before a fan-out.
     */
    void warmup(workload::AppId app, bool coherence = false);

    /**
     * Architectural configuration for @p app at @p point, with the
     * @p memSystem scenario overlaid (Flat1994 = the seed model).
     */
    sim::SimConfig configFor(workload::AppId app,
                             const MachinePoint &point,
                             bool infiniteCache = false,
                             MemSystem memSystem =
                                 MemSystem::Flat1994) const;

    /** Build the placement of @p alg for @p app on @p processors. */
    placement::PlacementMap placementFor(workload::AppId app,
                                         placement::Algorithm alg,
                                         uint32_t processors);

    /** Place with @p alg and simulate @p app at @p point. */
    RunResult run(workload::AppId app, placement::Algorithm alg,
                  const MachinePoint &point,
                  bool infiniteCache = false,
                  MemSystem memSystem = MemSystem::Flat1994);

  private:
    /**
     * One lazily-initialized cache slot. The map node (and so the
     * slot) is created under memoMutex_; the value is produced exactly
     * once via the flag, outside the map lock, so different
     * applications materialize concurrently.
     */
    template <typename T>
    struct Memo
    {
        std::once_flag once;
        T value{};
    };

    /** Find-or-create the slot of @p app in @p map (locked). */
    template <typename T>
    Memo<T> &
    memoEntry(std::map<workload::AppId, Memo<T>> &map,
              workload::AppId app)
    {
        {
            std::shared_lock<std::shared_mutex> lock(memoMutex_);
            auto it = map.find(app);
            if (it != map.end())
                return it->second;
        }
        std::unique_lock<std::shared_mutex> lock(memoMutex_);
        return map[app];  // std::map nodes are reference-stable
    }

    /** placementFor with the analysis lookup already done. */
    placement::PlacementMap placementWith(
        const analysis::StaticAnalysis &an, workload::AppId app,
        placement::Algorithm alg, uint32_t processors);

    uint32_t scale_;
    std::shared_mutex memoMutex_;
    std::map<workload::AppId,
             Memo<std::shared_ptr<const trace::TraceSet>>> traces_;
    std::map<workload::AppId,
             Memo<std::unique_ptr<analysis::StaticAnalysis>>> analyses_;
    std::map<workload::AppId,
             Memo<std::unique_ptr<sim::CoherenceProbeResult>>> probes_;
};

} // namespace tsp::experiment

#endif // TSP_EXPERIMENT_LAB_H
