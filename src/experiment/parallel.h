/**
 * @file
 * The parallel experiment engine: fans the cross-product of
 * (application x placement algorithm x machine point) simulation jobs
 * across a util::ThreadPool and reassembles the results in
 * deterministic input order.
 *
 * Determinism guarantee: every job is independent (Lab seeds each run
 * from (app, algorithm, processors) alone, and the shared caches are
 * read-only once materialized), so results are bit-identical to the
 * serial path for any pool width — ordering is the only hazard, and
 * runAll() removes it by indexing results by input position.
 */

#ifndef TSP_EXPERIMENT_PARALLEL_H
#define TSP_EXPERIMENT_PARALLEL_H

#include <vector>

#include "experiment/lab.h"
#include "util/thread_pool.h"

namespace tsp::experiment {

/** One simulation job of a fan-out. */
struct RunJob
{
    workload::AppId app{};
    placement::Algorithm alg{};
    MachinePoint point;
    bool infiniteCache = false;
};

/**
 * Fans independent Lab::run jobs over a fixed-width worker pool.
 * `jobs == 1` (or 0) executes inline on the calling thread — the
 * serial path — which the determinism tests diff against wide runs.
 */
class ParallelRunner
{
  public:
    explicit ParallelRunner(
        Lab &lab, unsigned jobs = util::ThreadPool::defaultJobs());

    /** Effective pool width (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Run every job and return the results in input order. Identical
     * jobs (same app, algorithm, point, cache mode) are simulated
     * once and the result is replicated, matching the serial drivers
     * that reuse baseline runs.
     */
    std::vector<RunResult> runAll(const std::vector<RunJob> &jobs);

    /**
     * Pre-materialize the per-app caches (traces, analysis, and the
     * coherence probe when @p coherence) for all @p apps, one app per
     * worker. Concurrent-safe and idempotent.
     */
    void warmup(const std::vector<workload::AppId> &apps,
                bool coherence = false);

  private:
    Lab &lab_;
    unsigned jobs_;
};

} // namespace tsp::experiment

#endif // TSP_EXPERIMENT_PARALLEL_H
