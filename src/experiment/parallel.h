/**
 * @file
 * The parallel experiment engine: fans the cross-product of
 * (application x placement algorithm x machine point) simulation jobs
 * across a util::ThreadPool and reassembles the results in
 * deterministic input order.
 *
 * Determinism guarantee: every job is independent (Lab seeds each run
 * from (app, algorithm, processors) alone, and the shared caches are
 * read-only once materialized), so results are bit-identical to the
 * serial path for any pool width — ordering is the only hazard, and
 * runAll() removes it by indexing results by input position.
 *
 * Robustness guarantees (runAllOutcomes):
 *  - fault isolation — a job throwing FatalError (bad cell
 *    configuration) becomes a failed Outcome; every other cell's
 *    result is unaffected and bit-identical to a clean run.
 *    PanicError (a library bug) still fails the whole sweep fast;
 *  - checkpoint/resume — with a Checkpoint attached, journaled cells
 *    are replayed instead of simulated and fresh results are
 *    journaled as they complete, so a killed sweep re-runs only the
 *    missing cells;
 *  - watchdog — with a job deadline set, cells running past it are
 *    flagged (warn + SweepStats) without being killed;
 *  - cancellation — with a CancelToken attached, a tripped token stops
 *    new cells from starting; finished cells stay journaled and the
 *    skipped cells report failed Outcomes, keeping the sweep
 *    resumable after SIGINT/SIGTERM or a watchdog escalation.
 */

#ifndef TSP_EXPERIMENT_PARALLEL_H
#define TSP_EXPERIMENT_PARALLEL_H

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "experiment/lab.h"
#include "experiment/outcome.h"
#include "util/cancel.h"
#include "util/thread_pool.h"

namespace tsp::experiment {

class Checkpoint;

/** One simulation job of a fan-out. */
struct RunJob
{
    workload::AppId app{};
    placement::Algorithm alg{};
    MachinePoint point;
    bool infiniteCache = false;

    /** Memory-system scenario (Flat1994 = the paper's machine). */
    MemSystem memSystem = MemSystem::Flat1994;
};

/** Human-readable job identity, e.g. "Water/SHARE-REFS@4p x 2c". */
std::string describeJob(const RunJob &job);

/**
 * Default lane count for batched lockstep simulation: the TSP_BATCH
 * environment variable, else 1 (batching off). Invalid values read
 * as 1.
 */
unsigned defaultBatchLanes();

/** One failed cell of a sweep, for failure summaries. */
struct JobFailure
{
    RunJob job;
    std::string error;

    /** "Water/SHARE-REFS@4p x 2c: fatal: ..." */
    std::string describe() const;
};

/** Counters of one runAll/runAllOutcomes invocation. */
struct SweepStats
{
    size_t total = 0;           //!< jobs requested (incl. duplicates)
    size_t unique = 0;          //!< deduplicated jobs
    size_t executed = 0;        //!< simulated this invocation
    size_t fromCheckpoint = 0;  //!< replayed from the journal
    size_t failed = 0;          //!< unique jobs that failed
    size_t watchdogFlagged = 0; //!< jobs that ran past the deadline
    size_t cancelled = 0;       //!< unique jobs skipped by cancellation
};

/** Tuning and robustness knobs of a sweep. */
struct SweepOptions
{
    /** Pool width; 1 (or 0) = serial on the calling thread. */
    unsigned jobs = util::ThreadPool::defaultJobs();

    /**
     * Lanes per batched lockstep simulation (sim::BatchMachine).
     * Cells of the same application are grouped, up to this many per
     * group, and advanced in lockstep over the shared traces — the
     * trace pages stream through the cache once per group instead of
     * once per cell. 1 (or 0) disables batching. Results are
     * bit-identical either way; per-cell robustness semantics
     * (checkpoint, fault isolation, cancellation) are preserved
     * lane by lane.
     */
    unsigned batch = defaultBatchLanes();

    /** Journal completed cells here and replay previous ones. */
    Checkpoint *checkpoint = nullptr;

    /**
     * When non-null, a job throwing FatalError degrades to a failed
     * Outcome recorded here (studies mark the cell failed); when
     * null, the studies' strict mode rethrows the first failure.
     */
    std::vector<JobFailure> *failures = nullptr;

    /** Filled with the sweep's counters when non-null. */
    SweepStats *statsOut = nullptr;

    /**
     * Filled with each job's simulation wall time in milliseconds, in
     * input order, when non-null. Cells replayed from the checkpoint
     * (and failed cells) report 0.0; duplicate jobs copy the executed
     * cell's time. Purely observational — never feeds results.
     */
    std::vector<double> *cellMillisOut = nullptr;

    /** Flag jobs running longer than this; zero disables. */
    std::chrono::milliseconds jobDeadline{0};

    /**
     * Cooperative cancellation: when non-null, the sweep polls this
     * token before starting each cell. Once the token trips (a signal
     * handler, the watchdog, another thread), cells not yet started
     * become failed Outcomes ("sweep cancelled...") while in-flight
     * cells run to completion and are journaled normally — so a
     * cancelled sweep is always cleanly resumable.
     */
    const util::CancelToken *cancel = nullptr;

    /**
     * Chaos/test hook invoked before each unique job executes; throw
     * from it to simulate that cell failing. Never set in production
     * paths.
     */
    std::function<void(const RunJob &)> faultInjector;
};

/**
 * Fans independent Lab::run jobs over a fixed-width worker pool.
 * `jobs == 1` (or 0) executes inline on the calling thread — the
 * serial path — which the determinism tests diff against wide runs.
 */
class ParallelRunner
{
  public:
    explicit ParallelRunner(
        Lab &lab, unsigned jobs = util::ThreadPool::defaultJobs());

    /** Configure from a SweepOptions (checkpoint, deadline, hooks). */
    ParallelRunner(Lab &lab, const SweepOptions &options);

    /** Effective pool width (>= 1). */
    unsigned jobs() const { return options_.jobs; }

    /**
     * Run every job and return per-job outcomes in input order.
     * Identical jobs (same app, algorithm, point, cache mode) are
     * simulated once and the outcome is replicated, matching the
     * serial drivers that reuse baseline runs. A job throwing
     * FatalError (or any std::exception other than PanicError) yields
     * a failed Outcome; PanicError aborts the sweep (remaining jobs
     * are skipped and the panic is rethrown).
     */
    std::vector<Outcome<RunResult>>
    runAllOutcomes(const std::vector<RunJob> &jobs);

    /**
     * Strict variant: run every job and return the results in input
     * order, throwing FatalError on the first (input-order) failed
     * job. Completed results are still journaled to the checkpoint
     * before the throw, so a failed sweep remains resumable.
     */
    std::vector<RunResult> runAll(const std::vector<RunJob> &jobs);

    /** Counters of the most recent runAll/runAllOutcomes call. */
    const SweepStats &lastSweepStats() const { return stats_; }

    /**
     * Pre-materialize the per-app caches (traces, analysis, and the
     * coherence probe when @p coherence) for all @p apps, one app per
     * worker. Concurrent-safe and idempotent.
     */
    void warmup(const std::vector<workload::AppId> &apps,
                bool coherence = false);

  private:
    Lab &lab_;
    SweepOptions options_;
    SweepStats stats_;
};

} // namespace tsp::experiment

#endif // TSP_EXPERIMENT_PARALLEL_H
