/**
 * @file
 * The error-vs-speed study for BBV phase sampling (`tsp-run sample`):
 * for each application and each (window size, cluster count) setting,
 * run the unsampled streaming simulation once and the phase-sampled
 * estimate, and report the execution-time error, the fraction of
 * references simulated, and the measured wall-clock speedup. The CSV
 * is the artifact the sampling methodology's error bounds in
 * docs/performance.md are derived from.
 */

#ifndef TSP_EXPERIMENT_SAMPLING_STUDY_H
#define TSP_EXPERIMENT_SAMPLING_STUDY_H

#include <cstdint>
#include <string>
#include <vector>

#include "sample/sampler.h"
#include "workload/app_profile.h"

namespace tsp::experiment {

/** One (application, window, clusters) study cell. */
struct SamplingCell
{
    std::string app;
    uint32_t processors = 0;
    uint32_t contexts = 0;
    uint64_t windowRefs = 0;
    uint32_t clustersRequested = 0;
    uint32_t clustersFound = 0;
    uint32_t windows = 0;

    uint64_t actualExecTime = 0;  //!< unsampled run, cycles
    uint64_t estExecTime = 0;     //!< sampled reconstruction, cycles
    double errorPct = 0;          //!< |est - actual| / actual * 100

    uint64_t fullRefs = 0;
    uint64_t sampledRefs = 0;
    double refsRatio = 0;  //!< fullRefs / sampledRefs (cost measure)

    double fullWallMs = 0;

    /**
     * Wall cost of building the SamplePlan (fingerprint pass, k-means,
     * producer snapshots). Paid once per (trace, window, k) and reused
     * across every placement algorithm and machine configuration the
     * plan serves — the study reports it separately so the one-time
     * cost is visible but does not masquerade as per-run cost.
     */
    double planWallMs = 0;

    /** Wall cost of one phase-sampled run with the plan in hand. */
    double sampledWallMs = 0;

    /** fullWallMs / sampledWallMs: per-run speedup, plan amortized. */
    double speedup = 0;
};

/** Study output: one row per cell, in input order. */
struct SamplingStudy
{
    std::vector<SamplingCell> cells;
};

/** Study parameters. */
struct SamplingStudyOptions
{
    /** Window sizes to sweep (per-thread references). */
    std::vector<uint64_t> windows = {20'000, 50'000};

    /** Cluster counts to sweep. */
    std::vector<uint32_t> clusters = {4, 8};

    /** Warmup windows per representative. */
    uint32_t warmupWindows = 1;

    /** Workload scale divisor (1 = full Table 1/2 size). */
    uint32_t scale = 1;

    /**
     * Thread-length multiplier applied after @ref scale. Sampling's
     * payoff grows with trace length (the sampled cost is fixed at
     * clusters x (1 + warmup) windows while the full cost is linear),
     * so the >=20x demonstrations run the Table 1/2 profiles at 8-32x
     * their default length rather than shrinking the windows, which
     * would blow up the warmup-boundary error (docs/performance.md).
     */
    uint32_t lengthMult = 1;
};

/**
 * Run the study over @p profiles. Each application is simulated with
 * one thread per processor (processors = threads, contexts = 1, the
 * coherence-probe shape) and identity placement; the unsampled
 * baseline runs once per application and is shared by all cells.
 */
SamplingStudy samplingStudy(
    const std::vector<workload::AppProfile> &profiles,
    const SamplingStudyOptions &options);

/** Write the study as CSV (schema fixed by tests/sample_test.cc). */
void writeSamplingCsv(const std::string &path,
                      const SamplingStudy &study);

/**
 * A synthetic scalable profile with @p threads threads for machine
 * sizes beyond the suite's largest app (Gauss, 127 threads): the
 * scale-smoke CI job and the 256-1024 processor studies use it.
 */
workload::AppProfile syntheticScaleProfile(uint32_t threads,
                                           uint64_t meanLength);

} // namespace tsp::experiment

#endif // TSP_EXPERIMENT_SAMPLING_STUDY_H
