/**
 * @file
 * Per-figure and per-table experiment drivers. Each driver reproduces
 * one evaluation artifact of the paper and returns plain data; the
 * bench binaries render it. See DESIGN.md's experiment index.
 *
 * Every sweep driver takes a `jobs` pool width (default: TSP_JOBS or
 * the hardware concurrency) and fans its independent simulation runs
 * over a ParallelRunner; results are bit-identical to `jobs == 1`.
 *
 * Every sweep driver also has a SweepOptions overload carrying the
 * robustness knobs: a Checkpoint to journal/replay cells, a failures
 * sink that turns per-cell FatalErrors into reported-and-skipped
 * rows (rows carry `failed`/`error`), and a per-job watchdog
 * deadline. Without a failures sink the drivers keep their strict
 * behavior — the first failed cell throws.
 */

#ifndef TSP_EXPERIMENT_STUDIES_H
#define TSP_EXPERIMENT_STUDIES_H

#include <string>
#include <vector>

#include "analysis/characteristics.h"
#include "core/algorithms.h"
#include "experiment/lab.h"
#include "experiment/parallel.h"
#include "util/thread_pool.h"

namespace tsp::experiment {

// ---------------------------------------------------------------- Figs 2-4

/** One bar of an execution-time figure. */
struct ExecTimePoint
{
    placement::Algorithm alg;
    MachinePoint point;
    uint64_t cycles = 0;
    double normalizedToRandom = 0.0;  //!< < 1 means faster than RANDOM
    double loadImbalance = 1.0;

    /**
     * Simulation wall time of this cell in milliseconds (0.0 when the
     * cell was replayed from a checkpoint or failed). Observational
     * only — never feeds the figure's data.
     */
    double wallMs = 0.0;

    /** Cell failed (only in degraded sweeps); @ref error says why. */
    bool failed = false;
    std::string error;
};

/**
 * Execution time of every algorithm in @p algs at every standard
 * machine point, normalized to RANDOM at the same point (the layout of
 * Figures 2, 3 and 4).
 */
std::vector<ExecTimePoint> execTimeStudy(
    Lab &lab, workload::AppId app,
    const std::vector<placement::Algorithm> &algs,
    unsigned jobs = util::ThreadPool::defaultJobs());

/** @copydoc execTimeStudy with full robustness options. */
std::vector<ExecTimePoint> execTimeStudy(
    Lab &lab, workload::AppId app,
    const std::vector<placement::Algorithm> &algs,
    const SweepOptions &options);

// ------------------------------------------------------------------- Fig 5

/** Miss components of one (algorithm, machine point) run. */
struct MissComponentRow
{
    placement::Algorithm alg;
    MachinePoint point;
    uint64_t compulsory = 0;
    uint64_t intraConflict = 0;
    uint64_t interConflict = 0;
    uint64_t invalidation = 0;
    uint64_t refs = 0;

    /** @copydoc ExecTimePoint::wallMs */
    double wallMs = 0.0;

    /** Cell failed (only in degraded sweeps); @ref error says why. */
    bool failed = false;
    std::string error;

    uint64_t
    totalMisses() const
    {
        return compulsory + intraConflict + interConflict + invalidation;
    }
};

/**
 * Cache miss component breakdown across placement algorithms and
 * machine points (the layout of Figure 5).
 */
std::vector<MissComponentRow> missComponentStudy(
    Lab &lab, workload::AppId app,
    const std::vector<placement::Algorithm> &algs,
    unsigned jobs = util::ThreadPool::defaultJobs());

/** @copydoc missComponentStudy with full robustness options. */
std::vector<MissComponentRow> missComponentStudy(
    Lab &lab, workload::AppId app,
    const std::vector<placement::Algorithm> &algs,
    const SweepOptions &options);

// --------------------------------------------------------- Hierarchy study

/** One (memory system, algorithm, machine point) cell. */
struct HierarchyPoint
{
    MemSystem memSystem = MemSystem::Flat1994;
    placement::Algorithm alg;
    MachinePoint point;
    uint64_t cycles = 0;

    /**
     * Normalized to RANDOM under the *same* memory system at the same
     * point, so each variant's bars are internally comparable and the
     * placement sensitivity can be read per memory system.
     */
    double normalizedToRandom = 0.0;

    /** Shared-L2 and interconnect behavior of this cell. */
    uint64_t l2Hits = 0;
    uint64_t l2Misses = 0;
    uint64_t netQueueingCycles = 0;

    /** @copydoc ExecTimePoint::wallMs */
    double wallMs = 0.0;

    /** Cell failed (only in degraded sweeps); @ref error says why. */
    bool failed = false;
    std::string error;
};

/**
 * Placement sensitivity across memory-system variants: every algorithm
 * in @p algs at every standard machine point, under every variant in
 * allMemSystems(), normalized to RANDOM under the same variant at the
 * same point. This is the bridge study from the paper's flat 1994
 * machine to a modern shared-L2/MOESI/contended-interconnect memory
 * system (see docs/memory_system.md).
 */
std::vector<HierarchyPoint> hierarchyStudy(
    Lab &lab, workload::AppId app,
    const std::vector<placement::Algorithm> &algs,
    unsigned jobs = util::ThreadPool::defaultJobs());

/** @copydoc hierarchyStudy with full robustness options. */
std::vector<HierarchyPoint> hierarchyStudy(
    Lab &lab, workload::AppId app,
    const std::vector<placement::Algorithm> &algs,
    const SweepOptions &options);

// ----------------------------------------------------------------- Table 4

/** One application's row of Table 4. */
struct Table4Row
{
    std::string app;

    /** Statically counted pairwise shared references (mean, total). */
    double staticPairMean = 0.0;
    double staticTotal = 0.0;

    /** Static shared references as % of total references. */
    double staticPctOfRefs = 0.0;

    /** Dynamic coherence traffic + compulsory (total). */
    double dynamicTotal = 0.0;

    /** Dynamic measure as % of total references. */
    double dynamicPctOfRefs = 0.0;

    /** Pairwise deviation of the dynamic measure (%, and absolute). */
    double dynamicPairDevPct = 0.0;
    double dynamicPairAbsDev = 0.0;

    /** staticTotal / dynamicTotal (the orders-of-magnitude gap). */
    double staticOverDynamic = 0.0;
};

/** Compute Table 4's row for @p app. */
Table4Row table4Row(Lab &lab, workload::AppId app);

/**
 * Table 4 rows for all of @p apps. The heavy per-app artifacts
 * (traces, analysis, coherence probe) materialize one app per worker;
 * rows come back in @p apps order and match serial table4Row calls.
 */
std::vector<Table4Row> table4Study(
    Lab &lab, const std::vector<workload::AppId> &apps,
    unsigned jobs = util::ThreadPool::defaultJobs());

// ----------------------------------------------------------------- Table 5

/** One (application, processors) cell pair of Table 5. */
struct Table5Cell
{
    std::string app;
    uint32_t processors = 0;

    /** Best static sharing algorithm at this point. */
    placement::Algorithm bestStatic{};
    double bestStaticVsLoadBal = 0.0;

    /** Dynamic coherence-traffic algorithm. */
    double coherenceVsLoadBal = 0.0;

    /** Cell failed (only in degraded sweeps); @ref error says why. */
    bool failed = false;
    std::string error;
};

/**
 * The 8 MB-cache study (Section 4.3): for each processor count,
 * execution time of the best static sharing-based algorithm (over all
 * twelve — the six metrics and their +LB variants) and of the
 * coherence-traffic algorithm, normalized to LOAD-BAL.
 */
std::vector<Table5Cell> table5Study(
    Lab &lab, workload::AppId app,
    unsigned jobs = util::ThreadPool::defaultJobs());

/** @copydoc table5Study with full robustness options. */
std::vector<Table5Cell> table5Study(Lab &lab, workload::AppId app,
                                    const SweepOptions &options);

// ----------------------------------------------------------------- Table 2

/** Compute the measured-characteristics row (Table 2) for @p app. */
analysis::CharacteristicsRow table2Row(Lab &lab, workload::AppId app);

} // namespace tsp::experiment

#endif // TSP_EXPERIMENT_STUDIES_H
