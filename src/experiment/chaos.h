/**
 * @file
 * Chaos harness: the fault-injection matrix over the whole robustness
 * stack. For every cataloged fault site x failure kind it runs a
 * representative end-to-end operation — a checkpointed parallel sweep
 * plus a trace save/load roundtrip and a CSV report — with exactly
 * that fault armed, and asserts the trifecta:
 *
 *  1. no crash and no hang — the operation either completes or raises
 *     a clean exception; nothing terminates the process;
 *  2. clean degradation or resumability — either the operation
 *     completed (possibly with failed-and-reported cells), or the
 *     checkpoint journal it left behind is loadable;
 *  3. bit-identical recovery — a fault-free re-run over the surviving
 *     checkpoint reproduces the baseline results exactly.
 *
 * The harness also fails a cell when the armed site never fired: a
 * cataloged site that the scenario cannot reach means the catalog and
 * the wiring have drifted. Exposed as a library so both the chaos CI
 * test and `tsp-run chaos` share one implementation.
 */

#ifndef TSP_EXPERIMENT_CHAOS_H
#define TSP_EXPERIMENT_CHAOS_H

#include <functional>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "workload/suite.h"

namespace tsp::experiment::chaos {

/**
 * A scenario leg plugged in by a layer *above* experiment (svc is the
 * one user), so its fault sites join the matrix without inverting the
 * layering. `run` executes the leg in the given work directory and
 * returns text folded into the scenario fingerprint — it must be
 * deterministic for fault-free runs over the same surviving on-disk
 * state. `reset` deletes the leg's on-disk state; the harness calls
 * it wherever it deletes its own checkpoint (baseline legs and the
 * start of each cell), and leaves the state alone for the recovery
 * leg so resumability is exercised.
 */
struct ScenarioExtension
{
    std::function<std::string(const std::string &workDir)> run;
    std::function<void(const std::string &workDir)> reset;
};

/** Knobs of one chaos-matrix run. */
struct Options
{
    /** Workload scale divisor; large = tiny traces = fast matrix. */
    uint32_t scale = 64;

    /** Sweep pool width (2 = one worker + the caller). */
    unsigned jobs = 2;

    /** Application the scenario sweeps. */
    workload::AppId app = workload::AppId::FFT;

    /**
     * Directory for the scenario's checkpoint/trace/CSV files. The
     * caller owns cleanup; files are reused (overwritten) per cell.
     */
    std::string workDir = ".";

    /** Print one line per cell as the matrix runs. */
    bool verbose = false;

    /** Extra scenario leg from a higher layer; empty = none. */
    ScenarioExtension extension;
};

/** Verdict of one (site, kind) cell of the matrix. */
struct CellResult
{
    fault::FaultSpec spec;

    /** The armed site actually executed and injected its fault. */
    bool fired = false;

    /** The faulted run completed without an escaping exception. */
    bool degradedCleanly = false;

    /** What the faulted run raised, when it did not degrade. */
    std::string escapedError;

    /** Fault-free re-run over the checkpoint matched the baseline. */
    bool recoveredIdentical = false;

    /** Failure detail when the trifecta did not hold. */
    std::string note;

    /** The trifecta held for this cell. */
    bool
    passed() const
    {
        return fired && recoveredIdentical;
    }

    /** One-line report, e.g. "trace.write:1:error PASS (degraded)". */
    std::string describe() const;
};

/** Outcome of the full matrix. */
struct MatrixResult
{
    std::vector<CellResult> cells;

    /** Baseline scenario fingerprint (diagnostics). */
    std::string baseline;

    size_t
    passedCount() const
    {
        size_t n = 0;
        for (const auto &c : cells)
            n += c.passed();
        return n;
    }

    bool
    allPassed() const
    {
        return passedCount() == cells.size();
    }
};

/**
 * Run the scenario once, fault-free, with a fresh Lab and no
 * checkpoint, and return its result fingerprint. Exposed so tests can
 * pin that the fingerprint itself is deterministic.
 */
std::string baselineFingerprint(const Options &options);

/**
 * Run the full (site x kind) chaos matrix. The caller must hold the
 * fault registry (no concurrent arm/disarm); the matrix leaves the
 * framework disarmed.
 */
MatrixResult runMatrix(const Options &options);

} // namespace tsp::experiment::chaos

#endif // TSP_EXPERIMENT_CHAOS_H
