#include "experiment/run_codec.h"

#include "util/error.h"

namespace tsp::experiment::codec {

namespace {

void
writeSummary(ByteWriter &w, const stats::Summary &s)
{
    w.u64(s.count());
    w.f64(s.mean());
    w.f64(s.rawM2());
    w.f64(s.min());
    w.f64(s.max());
}

stats::Summary
readSummary(ByteReader &r)
{
    uint64_t count = r.u64();
    double mean = r.f64();
    double m2 = r.f64();
    double min = r.f64();
    double max = r.f64();
    return stats::Summary::fromState(count, mean, m2, min, max);
}

void
writePairMatrix(ByteWriter &w, const stats::PairMatrix &m)
{
    w.u64(m.size());
    for (size_t i = 0; i < m.size(); ++i)
        for (size_t j = i + 1; j < m.size(); ++j)
            w.f64(m.get(i, j));
}

stats::PairMatrix
readPairMatrix(ByteReader &r)
{
    uint64_t n = r.u64();
    // 8 bytes per upper-triangle cell must fit in the remaining
    // payload; ByteReader::raw enforces it cell by cell, so a corrupt
    // size fails fast instead of allocating.
    util::fatalIf(n > 4096, "serialized pair matrix unreasonably large");
    stats::PairMatrix m(static_cast<size_t>(n));
    for (size_t i = 0; i < m.size(); ++i)
        for (size_t j = i + 1; j < m.size(); ++j) {
            double v = r.f64();
            if (v != 0.0)
                m.set(i, j, v);
        }
    return m;
}

} // namespace

void
writeRunResult(ByteWriter &w, const RunResult &result)
{
    const auto &assign = result.placement.assignment();
    w.u32(result.placement.processors());
    w.u64(assign.size());
    for (uint32_t proc : assign)
        w.u32(proc);

    w.u64(result.executionTime);
    w.f64(result.loadImbalance);

    const sim::SimStats &stats = result.stats;
    w.u64(stats.procs.size());
    for (const auto &p : stats.procs) {
        w.u64(p.busyCycles);
        w.u64(p.switchCycles);
        w.u64(p.idleCycles);
        w.u64(p.finishTime);
        w.u64(p.barrierCycles);
        w.u64(p.instructions);
        w.u64(p.memRefs);
        w.u64(p.hits);
        for (uint64_t m : p.misses)
            w.u64(m);
        w.u64(p.upgrades);
        w.u64(p.invalidationsSent);
        w.u64(p.invalidationsReceived);
        w.u64(p.writebacks);
    }

    writePairMatrix(w, stats.coherencePairs);
    w.u64(stats.sharingCompulsoryMisses);

    w.u8(stats.profiledSharing ? 1 : 0);
    const auto &prof = stats.sharingProfile;
    w.u64(prof.privateBlocks);
    w.u64(prof.sharedBlocks);
    w.u64(prof.readOnlyShared);
    w.u64(prof.migratoryShared);
    w.u64(prof.otherShared);
    writeSummary(w, prof.writeRunLength);
    writeSummary(w, prof.readRunLength);

    w.u64(stats.networkTransactions);
    w.u64(stats.networkQueueingCycles);
    w.u64(stats.networkMaxQueueing);

    w.u64(stats.l2Hits);
    w.u64(stats.l2Misses);
    w.u64(stats.l2Writebacks);
    w.u64(stats.l2BackInvalidations);
}

RunResult
readRunResult(ByteReader &r)
{
    RunResult result;

    uint32_t processors = r.u32();
    uint64_t threads = r.u64();
    util::fatalIf(threads > 65536,
                  "serialized placement unreasonably large");
    std::vector<uint32_t> assign(static_cast<size_t>(threads));
    for (auto &proc : assign)
        proc = r.u32();
    result.placement =
        placement::PlacementMap(processors, std::move(assign));

    result.executionTime = r.u64();
    result.loadImbalance = r.f64();

    sim::SimStats &stats = result.stats;
    uint64_t procCount = r.u64();
    util::fatalIf(procCount > 65536,
                  "serialized processor stats unreasonably large");
    stats.procs.resize(static_cast<size_t>(procCount));
    for (auto &p : stats.procs) {
        p.busyCycles = r.u64();
        p.switchCycles = r.u64();
        p.idleCycles = r.u64();
        p.finishTime = r.u64();
        p.barrierCycles = r.u64();
        p.instructions = r.u64();
        p.memRefs = r.u64();
        p.hits = r.u64();
        for (auto &m : p.misses)
            m = r.u64();
        p.upgrades = r.u64();
        p.invalidationsSent = r.u64();
        p.invalidationsReceived = r.u64();
        p.writebacks = r.u64();
    }

    stats.coherencePairs = readPairMatrix(r);
    stats.sharingCompulsoryMisses = r.u64();

    stats.profiledSharing = r.u8() != 0;
    auto &prof = stats.sharingProfile;
    prof.privateBlocks = r.u64();
    prof.sharedBlocks = r.u64();
    prof.readOnlyShared = r.u64();
    prof.migratoryShared = r.u64();
    prof.otherShared = r.u64();
    prof.writeRunLength = readSummary(r);
    prof.readRunLength = readSummary(r);

    stats.networkTransactions = r.u64();
    stats.networkQueueingCycles = r.u64();
    stats.networkMaxQueueing = r.u64();

    stats.l2Hits = r.u64();
    stats.l2Misses = r.u64();
    stats.l2Writebacks = r.u64();
    stats.l2BackInvalidations = r.u64();
    return result;
}

} // namespace tsp::experiment::codec
