/**
 * @file
 * Standard machine configurations: the paper sweeps the number of
 * processors (2..16) and hardware contexts per processor; in the
 * figures every thread is resident, so contexts = ceil(threads /
 * processors).
 */

#ifndef TSP_EXPERIMENT_CONFIGS_H
#define TSP_EXPERIMENT_CONFIGS_H

#include <cstdint>
#include <string>
#include <vector>

namespace tsp::experiment {

/** One point of the processors/contexts sweep. */
struct MachinePoint
{
    uint32_t processors = 2;
    uint32_t contexts = 1;

    /** Label like "4p x 3c". */
    std::string label() const;
};

/**
 * The paper's processor sweep {2, 4, 8, 16}, restricted to points
 * with at least one thread per processor, each with enough contexts
 * to hold all threads.
 */
std::vector<MachinePoint> standardSweep(uint32_t threads);

} // namespace tsp::experiment

#endif // TSP_EXPERIMENT_CONFIGS_H
