/**
 * @file
 * Standard machine configurations: the paper sweeps the number of
 * processors (2..16) and hardware contexts per processor; in the
 * figures every thread is resident, so contexts = ceil(threads /
 * processors).
 */

#ifndef TSP_EXPERIMENT_CONFIGS_H
#define TSP_EXPERIMENT_CONFIGS_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.h"

namespace tsp::experiment {

/** One point of the processors/contexts sweep. */
struct MachinePoint
{
    uint32_t processors = 2;
    uint32_t contexts = 1;

    /** Label like "4p x 3c". */
    std::string label() const;
};

/**
 * The paper's processor sweep {2, 4, 8, 16}, restricted to points
 * with at least one thread per processor, each with enough contexts
 * to hold all threads.
 */
std::vector<MachinePoint> standardSweep(uint32_t threads);

/**
 * Memory-system scenario: a named bundle of SimConfig memory knobs
 * that the hierarchy study sweeps alongside placement algorithm and
 * machine point. The variants are cumulative — each adds one modern
 * feature on top of the previous — so the study reads as a bridge
 * from the paper's 1994 machine to a contended multi-level machine:
 *
 *  - Flat1994:  the seed model (MESI, no L2, contention-free flat
 *               latency) — bit-identical to every existing result;
 *  - SharedL2:  + an inclusive shared L2 of 4x the L1 capacity
 *               (8-way, 12-cycle hits);
 *  - Moesi:     + the MOESI protocol (dirty sharing, no downgrade
 *               writebacks);
 *  - Contended: + a queued interconnect (one address-interleaved
 *               link per processor, 6-cycle occupancy).
 */
enum class MemSystem : uint8_t {
    Flat1994 = 0,
    SharedL2 = 1,
    Moesi = 2,
    Contended = 3,
};

/** Every MemSystem variant, in cumulative order. */
std::vector<MemSystem> allMemSystems();

/** Display name ("flat-1994", "shared-l2", "moesi", "contended"). */
std::string memSystemName(MemSystem ms);

/**
 * Overlay @p ms onto @p cfg (whose processors/cacheBytes must already
 * be set — the L2 is sized off the L1). Flat1994 leaves @p cfg
 * untouched, so the default path stays bit-identical to the seed.
 */
void applyMemSystem(sim::SimConfig &cfg, MemSystem ms);

} // namespace tsp::experiment

#endif // TSP_EXPERIMENT_CONFIGS_H
