#include "experiment/configs.h"

#include <sstream>

#include "util/bits.h"

namespace tsp::experiment {

std::string
MachinePoint::label() const
{
    std::ostringstream os;
    os << processors << "p x " << contexts << 'c';
    return os.str();
}

std::vector<MachinePoint>
standardSweep(uint32_t threads)
{
    std::vector<MachinePoint> points;
    for (uint32_t p : {2u, 4u, 8u, 16u}) {
        if (p > threads)
            break;
        uint32_t contexts = static_cast<uint32_t>(
            util::divCeil(threads, p));
        points.push_back({p, contexts});
    }
    return points;
}

} // namespace tsp::experiment
