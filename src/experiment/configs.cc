#include "experiment/configs.h"

#include <sstream>

#include "util/bits.h"
#include "util/error.h"

namespace tsp::experiment {

std::string
MachinePoint::label() const
{
    std::ostringstream os;
    os << processors << "p x " << contexts << 'c';
    return os.str();
}

std::vector<MachinePoint>
standardSweep(uint32_t threads)
{
    std::vector<MachinePoint> points;
    for (uint32_t p : {2u, 4u, 8u, 16u}) {
        if (p > threads)
            break;
        uint32_t contexts = static_cast<uint32_t>(
            util::divCeil(threads, p));
        points.push_back({p, contexts});
    }
    return points;
}

std::vector<MemSystem>
allMemSystems()
{
    return {MemSystem::Flat1994, MemSystem::SharedL2, MemSystem::Moesi,
            MemSystem::Contended};
}

std::string
memSystemName(MemSystem ms)
{
    switch (ms) {
      case MemSystem::Flat1994:  return "flat-1994";
      case MemSystem::SharedL2:  return "shared-l2";
      case MemSystem::Moesi:     return "moesi";
      case MemSystem::Contended: return "contended";
    }
    util::panic("unknown memory system variant");
}

void
applyMemSystem(sim::SimConfig &cfg, MemSystem ms)
{
    if (ms == MemSystem::Flat1994)
        return;  // the seed model, untouched
    // Cumulative: every non-flat variant carries the shared L2 (4x
    // the L1, a power of two because cacheBytes is one).
    cfg.l2Bytes = 4 * cfg.cacheBytes;
    cfg.l2Associativity = 8;
    cfg.l2HitLatency = 12;
    cfg.l2Inclusive = true;
    if (ms == MemSystem::SharedL2)
        return;
    cfg.protocol = sim::Protocol::Moesi;
    if (ms == MemSystem::Moesi)
        return;
    util::panicIf(ms != MemSystem::Contended,
                  "unknown memory system variant");
    cfg.networkLinks = cfg.processors;
    cfg.linkOccupancy = 6;
}

} // namespace tsp::experiment
