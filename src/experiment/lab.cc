#include "experiment/lab.h"

#include "fault/fault.h"
#include "obs/metric_defs.h"
#include "obs/timer.h"
#include "sim/machine.h"
#include "util/error.h"

namespace tsp::experiment {

using placement::Algorithm;
using workload::AppId;

Lab::Lab(uint32_t scale) : scale_(scale) {}

RunMissSummary
RunResult::missSummary() const
{
    RunMissSummary s;
    s.compulsory = stats.totalMissCount(sim::MissKind::Compulsory);
    s.intraConflict =
        stats.totalMissCount(sim::MissKind::IntraConflict);
    s.interConflict =
        stats.totalMissCount(sim::MissKind::InterConflict);
    s.invalidation = stats.totalMissCount(sim::MissKind::Invalidation);
    s.memRefs = stats.totalMemRefs();
    s.invalidationsSent = stats.totalInvalidationsSent();
    s.upgrades = stats.totalUpgrades();
    return s;
}

const trace::TraceSet &
Lab::traces(AppId app)
{
    auto &entry = memoEntry(traces_, app);
    // The materializing caller counts a memo miss; everyone else
    // (including callers that blocked on the once-flag) counts a hit.
    bool materialized = false;
    std::call_once(entry.once, [&] {
        // A throw here leaves the once-flag unset, so a later caller
        // can retry the materialization — exactly what the chaos
        // harness leans on when lab.memo_init fires.
        TSP_FAULT_POINT("lab.memo_init");
        materialized = true;
        entry.value = workload::appTraces(app, scale_);
    });
    (materialized ? obs::labTraceMemoMisses()
                  : obs::labTraceMemoHits())
        .inc();
    return *entry.value;
}

const analysis::StaticAnalysis &
Lab::analysis(AppId app)
{
    auto &entry = memoEntry(analyses_, app);
    bool materialized = false;
    std::call_once(entry.once, [&] {
        materialized = true;
        entry.value = std::make_unique<analysis::StaticAnalysis>(
            analysis::StaticAnalysis::analyze(traces(app)));
    });
    (materialized ? obs::labAnalysisMemoMisses()
                  : obs::labAnalysisMemoHits())
        .inc();
    return *entry.value;
}

const std::vector<uint64_t> &
Lab::threadLength(AppId app)
{
    return analysis(app).threadLength();
}

const stats::PairMatrix &
Lab::coherenceMatrix(AppId app)
{
    return coherenceStats(app).coherencePairs;
}

const sim::SimStats &
Lab::coherenceStats(AppId app)
{
    auto &entry = memoEntry(probes_, app);
    bool materialized = false;
    std::call_once(entry.once, [&] {
        materialized = true;
        sim::SimConfig base;
        base.cacheBytes = workload::scaledCacheBytes(app, scale_);
        entry.value = std::make_unique<sim::CoherenceProbeResult>(
            sim::measureCoherenceTraffic(traces(app), base));
    });
    (materialized ? obs::labProbeMemoMisses()
                  : obs::labProbeMemoHits())
        .inc();
    return entry.value->stats;
}

void
Lab::warmup(AppId app, bool coherence)
{
    obs::ScopedTimer timer(obs::labWarmupMillis());
    analysis(app);  // materializes traces(app) first
    if (coherence)
        coherenceStats(app);
}

sim::SimConfig
Lab::configFor(AppId app, const MachinePoint &point,
               bool infiniteCache, MemSystem memSystem) const
{
    sim::SimConfig cfg;
    cfg.processors = point.processors;
    cfg.contexts = point.contexts;
    cfg.cacheBytes = infiniteCache
        ? 8ull * 1024 * 1024
        : workload::scaledCacheBytes(app, scale_);
    applyMemSystem(cfg, memSystem);
    cfg.validate();
    return cfg;
}

placement::PlacementMap
Lab::placementWith(const analysis::StaticAnalysis &an, AppId app,
                   Algorithm alg, uint32_t processors)
{
    // Deterministic seed per (app, algorithm, processors).
    uint64_t seed = 0x51ed2701u;
    seed = seed * 1099511628211ull + static_cast<uint64_t>(app);
    seed = seed * 1099511628211ull + static_cast<uint64_t>(alg);
    seed = seed * 1099511628211ull + processors;
    util::Rng rng(seed);

    const stats::PairMatrix *coherence = nullptr;
    if (placement::needsCoherenceMatrix(alg))
        coherence = &coherenceMatrix(app);
    return placement::place(alg, an, processors, rng, coherence);
}

placement::PlacementMap
Lab::placementFor(AppId app, Algorithm alg, uint32_t processors)
{
    return placementWith(analysis(app), app, alg, processors);
}

RunResult
Lab::run(AppId app, Algorithm alg, const MachinePoint &point,
         bool infiniteCache, MemSystem memSystem)
{
    // Validate the machine point first: an invalid point must surface
    // as FatalError (so a sweep can isolate the bad cell) before the
    // placement algorithms ever see its processor count.
    sim::SimConfig cfg = configFor(app, point, infiniteCache,
                                   memSystem);
    // One analysis lookup serves the placement, the load-imbalance
    // figure and the thread lengths for the whole run.
    const analysis::StaticAnalysis &an = analysis(app);
    RunResult result;
    result.placement = placementWith(an, app, alg, point.processors);
    result.stats = sim::simulate(cfg, traces(app), result.placement);
    result.executionTime = result.stats.executionTime();
    result.loadImbalance =
        result.placement.loadImbalance(an.threadLength());
    return result;
}

} // namespace tsp::experiment
