#include "experiment/lab.h"

#include "sim/machine.h"
#include "util/error.h"

namespace tsp::experiment {

using placement::Algorithm;
using workload::AppId;

Lab::Lab(uint32_t scale) : scale_(scale) {}

const trace::TraceSet &
Lab::traces(AppId app)
{
    auto it = traces_.find(app);
    if (it == traces_.end()) {
        it = traces_
                 .emplace(app, workload::appTraces(app, scale_))
                 .first;
    }
    return *it->second;
}

const analysis::StaticAnalysis &
Lab::analysis(AppId app)
{
    auto it = analyses_.find(app);
    if (it == analyses_.end()) {
        auto result = std::make_unique<analysis::StaticAnalysis>(
            analysis::StaticAnalysis::analyze(traces(app)));
        it = analyses_.emplace(app, std::move(result)).first;
    }
    return *it->second;
}

const stats::PairMatrix &
Lab::coherenceMatrix(AppId app)
{
    return coherenceStats(app).coherencePairs;
}

const sim::SimStats &
Lab::coherenceStats(AppId app)
{
    auto it = probes_.find(app);
    if (it == probes_.end()) {
        sim::SimConfig base;
        base.cacheBytes = workload::scaledCacheBytes(app, scale_);
        auto probe = std::make_unique<sim::CoherenceProbeResult>(
            sim::measureCoherenceTraffic(traces(app), base));
        it = probes_.emplace(app, std::move(probe)).first;
    }
    return it->second->stats;
}

sim::SimConfig
Lab::configFor(AppId app, const MachinePoint &point,
               bool infiniteCache) const
{
    sim::SimConfig cfg;
    cfg.processors = point.processors;
    cfg.contexts = point.contexts;
    cfg.cacheBytes = infiniteCache
        ? 8ull * 1024 * 1024
        : workload::scaledCacheBytes(app, scale_);
    cfg.validate();
    return cfg;
}

placement::PlacementMap
Lab::placementFor(AppId app, Algorithm alg, uint32_t processors)
{
    const auto &an = analysis(app);
    // Deterministic seed per (app, algorithm, processors).
    uint64_t seed = 0x51ed2701u;
    seed = seed * 1099511628211ull + static_cast<uint64_t>(app);
    seed = seed * 1099511628211ull + static_cast<uint64_t>(alg);
    seed = seed * 1099511628211ull + processors;
    util::Rng rng(seed);

    const stats::PairMatrix *coherence = nullptr;
    if (placement::needsCoherenceMatrix(alg))
        coherence = &coherenceMatrix(app);
    return placement::place(alg, an, processors, rng, coherence);
}

RunResult
Lab::run(AppId app, Algorithm alg, const MachinePoint &point,
         bool infiniteCache)
{
    RunResult result;
    result.placement = placementFor(app, alg, point.processors);
    sim::SimConfig cfg = configFor(app, point, infiniteCache);
    result.stats = sim::simulate(cfg, traces(app), result.placement);
    result.executionTime = result.stats.executionTime();
    result.loadImbalance =
        result.placement.loadImbalance(analysis(app).threadLength());
    return result;
}

} // namespace tsp::experiment
