/**
 * @file
 * Per-job result-or-error container for the fault-isolated experiment
 * engine. A sweep of hundreds of (app x algorithm x point) cells must
 * not discard every completed result because one cell threw — each
 * job's success or captured failure travels in an Outcome, and the
 * studies decide how a failed cell degrades (reported-and-skipped).
 */

#ifndef TSP_EXPERIMENT_OUTCOME_H
#define TSP_EXPERIMENT_OUTCOME_H

#include <string>
#include <utility>

#include "util/error.h"

namespace tsp::experiment {

/**
 * Either a value or a captured error message. Accessing the wrong arm
 * is a PanicError (a caller bug), never undefined behavior.
 */
template <typename T>
class Outcome
{
  public:
    /** Default state: a failure with a descriptive poison message (so
     *  vectors of outcomes start out safely poisoned, and a cell that
     *  was never reached — crash, cancellation, engine bug — reports
     *  something actionable instead of an empty string). */
    Outcome() = default;

    /** Build a successful outcome holding @p value. */
    static Outcome
    success(T value)
    {
        Outcome o;
        o.ok_ = true;
        o.value_ = std::move(value);
        o.error_.clear();
        return o;
    }

    /** Build a failed outcome carrying @p error. */
    static Outcome
    failure(std::string error)
    {
        Outcome o;
        o.ok_ = false;
        o.error_ = std::move(error);
        return o;
    }

    /** True when a value is present. */
    bool ok() const { return ok_; }

    /** The value; PanicError when the outcome is a failure. */
    const T &
    value() const
    {
        util::panicIf(!ok_, "Outcome::value() on a failed outcome: " +
                                error_);
        return value_;
    }

    /** @copydoc value() const */
    T &
    value()
    {
        util::panicIf(!ok_, "Outcome::value() on a failed outcome: " +
                                error_);
        return value_;
    }

    /** The captured error; PanicError when the outcome succeeded. */
    const std::string &
    error() const
    {
        util::panicIf(ok_, "Outcome::error() on a successful outcome");
        return error_;
    }

  private:
    bool ok_ = false;
    std::string error_ =
        "job never ran (sweep ended before this cell was attempted)";
    T value_{};
};

} // namespace tsp::experiment

#endif // TSP_EXPERIMENT_OUTCOME_H
