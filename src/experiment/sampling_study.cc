#include "experiment/sampling_study.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "core/placement_map.h"
#include "experiment/report.h"
#include "obs/timer.h"
#include "sim/machine.h"
#include "util/format.h"
#include "workload/stream.h"
#include "workload/suite.h"

namespace tsp::experiment {

namespace {

sim::SimConfig
probeConfig(const workload::AppProfile &p, uint32_t scale)
{
    sim::SimConfig cfg;
    cfg.processors = p.threads;
    cfg.contexts = 1;
    uint64_t cache = p.cacheBytes / scale;
    cfg.cacheBytes = cache < 4096 ? 4096 : cache;
    return cfg;
}

placement::PlacementMap
identityPlacement(uint32_t threads)
{
    std::vector<uint32_t> assign(threads);
    std::iota(assign.begin(), assign.end(), 0u);
    return placement::PlacementMap(threads, assign);
}

double
errorPct(uint64_t actual, uint64_t est)
{
    if (actual == 0)
        return est == 0 ? 0.0 : 100.0;
    double a = static_cast<double>(actual);
    double e = static_cast<double>(est);
    return std::fabs(e - a) / a * 100.0;
}

} // namespace

SamplingStudy
samplingStudy(const std::vector<workload::AppProfile> &profiles,
              const SamplingStudyOptions &options)
{
    SamplingStudy study;
    for (const workload::AppProfile &base : profiles) {
        workload::AppProfile p = base;
        p.meanLength = p.meanLength / options.scale *
                       (options.lengthMult ? options.lengthMult : 1);
        sim::SimConfig cfg = probeConfig(p, options.scale);
        placement::PlacementMap place = identityPlacement(p.threads);

        // Unsampled baseline, once per application (streaming, so
        // even the largest machine stays in bounded memory).
        workload::AppStreamFactory fullFactory(p, /*scale=*/1);
        obs::StopWatch fullWatch;
        sim::SimStats actual =
            sim::simulateStreaming(cfg, fullFactory, place);
        double fullWallMs = fullWatch.elapsedMs();

        for (uint64_t window : options.windows) {
            for (uint32_t k : options.clusters) {
                sample::SampleOptions so;
                so.windowRefs = window;
                so.clusters = k;
                so.warmupWindows = options.warmupWindows;

                // Plan construction (fingerprints + clustering +
                // snapshots) is timed apart from the sampled run: in
                // a placement study the plan is built once per trace
                // and reused for every algorithm/configuration cell.
                workload::AppStreamFactory factory(p, /*scale=*/1);
                obs::StopWatch planWatch;
                sample::SamplePlan plan = sample::buildSamplePlan(
                    factory, so, cfg.blockBytes);
                double planWallMs = planWatch.elapsedMs();

                obs::StopWatch watch;
                sample::SampleEstimate est = sample::sampleSimulate(
                    cfg, factory, place, plan);
                double sampledWallMs = watch.elapsedMs();

                SamplingCell cell;
                cell.app = p.name;
                cell.processors = cfg.processors;
                cell.contexts = cfg.contexts;
                cell.windowRefs = window;
                cell.clustersRequested = k;
                cell.clustersFound = est.clusters;
                cell.windows = est.windows;
                cell.actualExecTime = actual.executionTime();
                cell.estExecTime = est.execTime;
                cell.errorPct =
                    errorPct(cell.actualExecTime, cell.estExecTime);
                cell.fullRefs = est.fullRefs;
                cell.sampledRefs = est.sampledRefs;
                cell.refsRatio = est.sampledRefs
                    ? static_cast<double>(est.fullRefs) /
                        static_cast<double>(est.sampledRefs)
                    : 0.0;
                cell.fullWallMs = fullWallMs;
                cell.planWallMs = planWallMs;
                cell.sampledWallMs = sampledWallMs;
                cell.speedup = sampledWallMs > 0
                    ? fullWallMs / sampledWallMs
                    : 0.0;
                study.cells.push_back(std::move(cell));
            }
        }
    }
    return study;
}

void
writeSamplingCsv(const std::string &path, const SamplingStudy &study)
{
    CsvWriter csv(path);
    csv.header({"app", "processors", "contexts", "window_refs",
                "clusters_requested", "clusters_found", "windows",
                "actual_cycles", "est_cycles", "error_pct",
                "full_refs", "sampled_refs", "refs_ratio",
                "full_wall_ms", "plan_wall_ms", "sampled_wall_ms",
                "speedup"});
    for (const SamplingCell &c : study.cells) {
        csv.row({c.app, std::to_string(c.processors),
                 std::to_string(c.contexts),
                 std::to_string(c.windowRefs),
                 std::to_string(c.clustersRequested),
                 std::to_string(c.clustersFound),
                 std::to_string(c.windows),
                 std::to_string(c.actualExecTime),
                 std::to_string(c.estExecTime),
                 util::fmtFixed(c.errorPct, 3),
                 std::to_string(c.fullRefs),
                 std::to_string(c.sampledRefs),
                 util::fmtFixed(c.refsRatio, 2),
                 util::fmtFixed(c.fullWallMs, 3),
                 util::fmtFixed(c.planWallMs, 3),
                 util::fmtFixed(c.sampledWallMs, 3),
                 util::fmtFixed(c.speedup, 2)});
    }
}

workload::AppProfile
syntheticScaleProfile(uint32_t threads, uint64_t meanLength)
{
    workload::AppProfile p;
    p.name = "scale-" + std::to_string(threads);
    p.threads = threads;
    p.meanLength = meanLength;
    p.lengthDevPct = 15.0;
    p.phases = 4;
    p.globalFrac = 0.5;
    p.neighborFrac = 0.2;
    p.mailboxFrac = 0.1;
    p.sliceFrac = 0.2;
    p.globalWriteMode = workload::GlobalWriteMode::Migratory;
    p.cacheBytes = 16 * 1024;
    p.seed = 41;
    return p;
}

} // namespace tsp::experiment
