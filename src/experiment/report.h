/**
 * @file
 * Result emission: CSV writing for every study's data so downstream
 * plotting/diffing doesn't have to scrape the ASCII tables. Bench
 * binaries write CSVs when the TSP_OUT environment variable names a
 * directory.
 */

#ifndef TSP_EXPERIMENT_REPORT_H
#define TSP_EXPERIMENT_REPORT_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/characteristics.h"
#include "experiment/studies.h"

namespace tsp::experiment {

/**
 * Minimal CSV writer: RFC-4180-style quoting, one header row.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; throws FatalError on failure. */
    explicit CsvWriter(const std::string &path);

    /** Set the header row (must precede the first data row). */
    void header(const std::vector<std::string> &cells);

    /** Append one data row (width-checked against the header). */
    void row(const std::vector<std::string> &cells);

    /** Flush and close; called by the destructor as well. */
    void close();

    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

  private:
    void writeRow(const std::vector<std::string> &cells);

    struct Impl;
    std::unique_ptr<Impl> impl_;  // owned: no leak if the ctor throws
};

/** Quote one CSV cell per RFC 4180 (only when necessary). */
std::string csvQuote(const std::string &cell);

/**
 * Directory named by the TSP_OUT environment variable, or nullopt
 * when unset. Bench binaries use this to decide whether to emit CSVs.
 */
std::optional<std::string> outputDirectory();

/**
 * Render the failure summary of a degraded sweep as a text block
 * ("sweep failures: N\n  - <job>: <error>..."), or an empty string
 * when nothing failed. Printed by benches/CLIs after their tables.
 */
std::string renderFailureSummary(
    const std::vector<JobFailure> &failures);

/** Write a degraded sweep's failure list as CSV. */
void writeFailuresCsv(const std::string &path,
                      const std::vector<JobFailure> &failures);

/** Write an execution-time study (Figures 2-4 layout) as CSV. */
void writeExecTimeCsv(const std::string &path,
                      const std::vector<ExecTimePoint> &points);

/** Write a memory-hierarchy study (hierarchy report layout) as CSV. */
void writeHierarchyCsv(const std::string &path,
                       const std::vector<HierarchyPoint> &points);

/** Write a miss-component study (Figure 5 layout) as CSV. */
void writeMissComponentsCsv(const std::string &path,
                            const std::vector<MissComponentRow> &rows);

/** Write Table 4 rows as CSV. */
void writeTable4Csv(const std::string &path,
                    const std::vector<Table4Row> &rows);

/** Write Table 5 cells as CSV. */
void writeTable5Csv(const std::string &path,
                    const std::vector<Table5Cell> &cells);

/** Write Table 2 characteristic rows as CSV. */
void writeTable2Csv(
    const std::string &path,
    const std::vector<analysis::CharacteristicsRow> &rows);

} // namespace tsp::experiment

#endif // TSP_EXPERIMENT_REPORT_H
