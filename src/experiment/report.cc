#include "experiment/report.h"

#include <cstdlib>
#include <fstream>

#include "core/algorithms.h"
#include "fault/fault.h"
#include "util/error.h"
#include "util/format.h"
#include "workload/suite.h"

namespace tsp::experiment {

struct CsvWriter::Impl
{
    std::ofstream os;
    size_t width = 0;
    bool headerWritten = false;
};

CsvWriter::CsvWriter(const std::string &path) : impl_(new Impl)
{
    impl_->os.open(path);
    util::fatalIf(!impl_->os, "cannot open CSV for writing: " + path);
}

CsvWriter::~CsvWriter()
{
    close();
}

void
CsvWriter::close()
{
    if (impl_->os.is_open()) {
        impl_->os.flush();
        impl_->os.close();
    }
}

std::string
csvQuote(const std::string &cell)
{
    bool needs = cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    TSP_FAULT_POINT("report.write");
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            impl_->os << ',';
        impl_->os << csvQuote(cells[i]);
    }
    impl_->os << '\n';
    util::fatalIf(!impl_->os, "CSV write failed");
}

void
CsvWriter::header(const std::vector<std::string> &cells)
{
    util::fatalIf(impl_->headerWritten, "CSV header already written");
    impl_->width = cells.size();
    impl_->headerWritten = true;
    writeRow(cells);
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    util::fatalIf(!impl_->headerWritten,
                  "CSV rows need a header first");
    util::fatalIf(cells.size() != impl_->width,
                  "CSV row width does not match header");
    writeRow(cells);
}

std::optional<std::string>
outputDirectory()
{
    const char *dir = std::getenv("TSP_OUT");
    if (!dir || !*dir)
        return std::nullopt;
    return std::string(dir);
}

namespace {

std::string
num(double x)
{
    return util::fmtFixed(x, 6);
}

/** The "status" CSV cell of a row: "ok" or the failure message. */
std::string
statusCell(bool failed, const std::string &error)
{
    return failed ? "failed: " + error : "ok";
}

} // namespace

std::string
renderFailureSummary(const std::vector<JobFailure> &failures)
{
    if (failures.empty())
        return "";
    std::string out = "sweep failures: " +
                      std::to_string(failures.size()) + "\n";
    for (const auto &f : failures)
        out += "  - " + f.describe() + "\n";
    return out;
}

void
writeFailuresCsv(const std::string &path,
                 const std::vector<JobFailure> &failures)
{
    CsvWriter csv(path);
    csv.header({"application", "algorithm", "processors", "contexts",
                "infinite_cache", "mem_system", "error"});
    for (const auto &f : failures) {
        csv.row({workload::appName(f.job.app),
                 placement::algorithmName(f.job.alg),
                 std::to_string(f.job.point.processors),
                 std::to_string(f.job.point.contexts),
                 f.job.infiniteCache ? "1" : "0",
                 memSystemName(f.job.memSystem), f.error});
    }
}

void
writeExecTimeCsv(const std::string &path,
                 const std::vector<ExecTimePoint> &points)
{
    CsvWriter csv(path);
    csv.header({"algorithm", "processors", "contexts", "cycles",
                "normalized_to_random", "load_imbalance", "wall_ms",
                "status"});
    for (const auto &pt : points) {
        csv.row({placement::algorithmName(pt.alg),
                 std::to_string(pt.point.processors),
                 std::to_string(pt.point.contexts),
                 std::to_string(pt.cycles),
                 num(pt.normalizedToRandom), num(pt.loadImbalance),
                 util::fmtFixed(pt.wallMs, 3),
                 statusCell(pt.failed, pt.error)});
    }
}

void
writeHierarchyCsv(const std::string &path,
                  const std::vector<HierarchyPoint> &points)
{
    CsvWriter csv(path);
    csv.header({"mem_system", "algorithm", "processors", "contexts",
                "cycles", "normalized_to_random", "l2_hits",
                "l2_misses", "net_queueing_cycles", "wall_ms",
                "status"});
    for (const auto &pt : points) {
        csv.row({memSystemName(pt.memSystem),
                 placement::algorithmName(pt.alg),
                 std::to_string(pt.point.processors),
                 std::to_string(pt.point.contexts),
                 std::to_string(pt.cycles),
                 num(pt.normalizedToRandom),
                 std::to_string(pt.l2Hits),
                 std::to_string(pt.l2Misses),
                 std::to_string(pt.netQueueingCycles),
                 util::fmtFixed(pt.wallMs, 3),
                 statusCell(pt.failed, pt.error)});
    }
}

void
writeMissComponentsCsv(const std::string &path,
                       const std::vector<MissComponentRow> &rows)
{
    CsvWriter csv(path);
    csv.header({"algorithm", "processors", "contexts", "compulsory",
                "intra_conflict", "inter_conflict", "invalidation",
                "refs", "wall_ms", "status"});
    for (const auto &row : rows) {
        csv.row({placement::algorithmName(row.alg),
                 std::to_string(row.point.processors),
                 std::to_string(row.point.contexts),
                 std::to_string(row.compulsory),
                 std::to_string(row.intraConflict),
                 std::to_string(row.interConflict),
                 std::to_string(row.invalidation),
                 std::to_string(row.refs),
                 util::fmtFixed(row.wallMs, 3),
                 statusCell(row.failed, row.error)});
    }
}

void
writeTable4Csv(const std::string &path,
               const std::vector<Table4Row> &rows)
{
    CsvWriter csv(path);
    csv.header({"application", "static_pair_mean", "static_total",
                "static_pct_refs", "dynamic_total", "dynamic_pct_refs",
                "static_over_dynamic", "dynamic_pair_dev_pct",
                "dynamic_pair_abs_dev"});
    for (const auto &row : rows) {
        csv.row({row.app, num(row.staticPairMean),
                 num(row.staticTotal), num(row.staticPctOfRefs),
                 num(row.dynamicTotal), num(row.dynamicPctOfRefs),
                 num(row.staticOverDynamic),
                 num(row.dynamicPairDevPct),
                 num(row.dynamicPairAbsDev)});
    }
}

void
writeTable5Csv(const std::string &path,
               const std::vector<Table5Cell> &cells)
{
    CsvWriter csv(path);
    csv.header({"application", "processors", "best_static_algorithm",
                "best_static_vs_loadbal", "coherence_vs_loadbal"});
    for (const auto &cell : cells) {
        csv.row({cell.app, std::to_string(cell.processors),
                 placement::algorithmName(cell.bestStatic),
                 num(cell.bestStaticVsLoadBal),
                 num(cell.coherenceVsLoadBal)});
    }
}

void
writeTable2Csv(const std::string &path,
               const std::vector<analysis::CharacteristicsRow> &rows)
{
    CsvWriter csv(path);
    csv.header({"application", "pairwise_mean", "pairwise_dev_pct",
                "nway_mean", "nway_dev_pct", "refs_per_shared_addr",
                "refs_per_shared_addr_dev_pct", "shared_refs_pct",
                "length_mean", "length_dev_pct"});
    for (const auto &row : rows) {
        csv.row({row.app, num(row.pairwiseMean), num(row.pairwiseDevPct),
                 num(row.nwayMean), num(row.nwayDevPct),
                 num(row.refsPerSharedAddrMean),
                 num(row.refsPerSharedAddrDevPct),
                 num(row.sharedRefsPct), num(row.lengthMean),
                 num(row.lengthDevPct)});
    }
}

} // namespace tsp::experiment
