#include "experiment/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

#include "experiment/parallel.h"
#include "fault/fault.h"
#include "obs/metric_defs.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/retry.h"

namespace tsp::experiment {

namespace {

constexpr char kMagic[4] = {'T', 'S', 'P', 'C'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(uint32_t);
constexpr size_t kFrameBytes = 2 * sizeof(uint32_t);

// ------------------------------------------- little binary (de)serializer

/** Append-only byte buffer with typed writers. */
class ByteWriter
{
  public:
    void
    raw(const void *data, size_t len)
    {
        bytes_.append(static_cast<const char *>(data), len);
    }

    void u8(uint8_t v) { raw(&v, sizeof(v)); }
    void u32(uint32_t v) { raw(&v, sizeof(v)); }
    void u64(uint64_t v) { raw(&v, sizeof(v)); }
    void f64(double v) { raw(&v, sizeof(v)); }

    const std::string &bytes() const { return bytes_; }

  private:
    std::string bytes_;
};

/** Bounds-checked reader over a record payload. */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

    void
    raw(void *out, size_t len)
    {
        util::fatalIf(len > bytes_.size() - pos_,
                      "checkpoint record truncated");
        std::memcpy(out, bytes_.data() + pos_, len);
        pos_ += len;
    }

    uint8_t
    u8()
    {
        uint8_t v;
        raw(&v, sizeof(v));
        return v;
    }

    uint32_t
    u32()
    {
        uint32_t v;
        raw(&v, sizeof(v));
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v;
        raw(&v, sizeof(v));
        return v;
    }

    double
    f64()
    {
        double v;
        raw(&v, sizeof(v));
        return v;
    }

    bool done() const { return pos_ == bytes_.size(); }

  private:
    std::string_view bytes_;
    size_t pos_ = 0;
};

// -------------------------------------------------- RunResult (de)coding

void
writeSummary(ByteWriter &w, const stats::Summary &s)
{
    w.u64(s.count());
    w.f64(s.mean());
    w.f64(s.rawM2());
    w.f64(s.min());
    w.f64(s.max());
}

stats::Summary
readSummary(ByteReader &r)
{
    uint64_t count = r.u64();
    double mean = r.f64();
    double m2 = r.f64();
    double min = r.f64();
    double max = r.f64();
    return stats::Summary::fromState(count, mean, m2, min, max);
}

void
writePairMatrix(ByteWriter &w, const stats::PairMatrix &m)
{
    w.u64(m.size());
    for (size_t i = 0; i < m.size(); ++i)
        for (size_t j = i + 1; j < m.size(); ++j)
            w.f64(m.get(i, j));
}

stats::PairMatrix
readPairMatrix(ByteReader &r)
{
    uint64_t n = r.u64();
    // 8 bytes per upper-triangle cell must fit in the remaining
    // payload; ByteReader::raw enforces it cell by cell, so a corrupt
    // size fails fast instead of allocating.
    util::fatalIf(n > 4096, "checkpoint pair matrix unreasonably large");
    stats::PairMatrix m(static_cast<size_t>(n));
    for (size_t i = 0; i < m.size(); ++i)
        for (size_t j = i + 1; j < m.size(); ++j) {
            double v = r.f64();
            if (v != 0.0)
                m.set(i, j, v);
        }
    return m;
}

void
writeResult(ByteWriter &w, const RunResult &result)
{
    const auto &assign = result.placement.assignment();
    w.u32(result.placement.processors());
    w.u64(assign.size());
    for (uint32_t proc : assign)
        w.u32(proc);

    w.u64(result.executionTime);
    w.f64(result.loadImbalance);

    const sim::SimStats &stats = result.stats;
    w.u64(stats.procs.size());
    for (const auto &p : stats.procs) {
        w.u64(p.busyCycles);
        w.u64(p.switchCycles);
        w.u64(p.idleCycles);
        w.u64(p.finishTime);
        w.u64(p.barrierCycles);
        w.u64(p.instructions);
        w.u64(p.memRefs);
        w.u64(p.hits);
        for (uint64_t m : p.misses)
            w.u64(m);
        w.u64(p.upgrades);
        w.u64(p.invalidationsSent);
        w.u64(p.invalidationsReceived);
        w.u64(p.writebacks);
    }

    writePairMatrix(w, stats.coherencePairs);
    w.u64(stats.sharingCompulsoryMisses);

    w.u8(stats.profiledSharing ? 1 : 0);
    const auto &prof = stats.sharingProfile;
    w.u64(prof.privateBlocks);
    w.u64(prof.sharedBlocks);
    w.u64(prof.readOnlyShared);
    w.u64(prof.migratoryShared);
    w.u64(prof.otherShared);
    writeSummary(w, prof.writeRunLength);
    writeSummary(w, prof.readRunLength);

    w.u64(stats.networkTransactions);
    w.u64(stats.networkQueueingCycles);
    w.u64(stats.networkMaxQueueing);
}

RunResult
readResult(ByteReader &r)
{
    RunResult result;

    uint32_t processors = r.u32();
    uint64_t threads = r.u64();
    util::fatalIf(threads > 65536,
                  "checkpoint placement unreasonably large");
    std::vector<uint32_t> assign(static_cast<size_t>(threads));
    for (auto &proc : assign)
        proc = r.u32();
    result.placement =
        placement::PlacementMap(processors, std::move(assign));

    result.executionTime = r.u64();
    result.loadImbalance = r.f64();

    sim::SimStats &stats = result.stats;
    uint64_t procCount = r.u64();
    util::fatalIf(procCount > 65536,
                  "checkpoint processor stats unreasonably large");
    stats.procs.resize(static_cast<size_t>(procCount));
    for (auto &p : stats.procs) {
        p.busyCycles = r.u64();
        p.switchCycles = r.u64();
        p.idleCycles = r.u64();
        p.finishTime = r.u64();
        p.barrierCycles = r.u64();
        p.instructions = r.u64();
        p.memRefs = r.u64();
        p.hits = r.u64();
        for (auto &m : p.misses)
            m = r.u64();
        p.upgrades = r.u64();
        p.invalidationsSent = r.u64();
        p.invalidationsReceived = r.u64();
        p.writebacks = r.u64();
    }

    stats.coherencePairs = readPairMatrix(r);
    stats.sharingCompulsoryMisses = r.u64();

    stats.profiledSharing = r.u8() != 0;
    auto &prof = stats.sharingProfile;
    prof.privateBlocks = r.u64();
    prof.sharedBlocks = r.u64();
    prof.readOnlyShared = r.u64();
    prof.migratoryShared = r.u64();
    prof.otherShared = r.u64();
    prof.writeRunLength = readSummary(r);
    prof.readRunLength = readSummary(r);

    stats.networkTransactions = r.u64();
    stats.networkQueueingCycles = r.u64();
    stats.networkMaxQueueing = r.u64();
    return result;
}

} // namespace

// ------------------------------------------------------------ Checkpoint

Checkpoint::Key
Checkpoint::keyOf(const RunJob &job)
{
    Key key;
    key.app = static_cast<uint32_t>(job.app);
    key.alg = static_cast<uint32_t>(job.alg);
    key.processors = job.point.processors;
    key.contexts = job.point.contexts;
    key.infiniteCache = job.infiniteCache ? 1 : 0;
    return key;
}

Checkpoint::Checkpoint(std::string path, uint32_t scale)
    : path_(std::move(path)), scale_(scale)
{
    ByteWriter header;
    header.raw(kMagic, sizeof(kMagic));
    header.u32(kVersion);
    header.u32(scale_);
    journal_ = header.bytes();
    load();
}

size_t
Checkpoint::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return results_.size();
}

void
Checkpoint::load()
{
    std::ifstream is(path_, std::ios::binary);
    if (!is)
        return;  // no journal yet: start fresh
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string bytes = buf.str();

    util::fatalIf(bytes.size() < kHeaderBytes ||
                      std::memcmp(bytes.data(), kMagic,
                                  sizeof(kMagic)) != 0,
                  "not a TSPC checkpoint journal: " + path_);
    uint32_t version = 0, scale = 0;
    std::memcpy(&version, bytes.data() + sizeof(kMagic),
                sizeof(version));
    std::memcpy(&scale, bytes.data() + sizeof(kMagic) + sizeof(version),
                sizeof(scale));
    util::fatalIf(version != kVersion,
                  util::concat("unsupported checkpoint version ",
                               version, " in ", path_));
    util::fatalIf(scale != scale_,
                  util::concat("checkpoint ", path_,
                               " was written at workload scale ",
                               scale, ", this lab runs at scale ",
                               scale_));

    size_t pos = kHeaderBytes;
    size_t good = pos;
    while (pos < bytes.size()) {
        if (bytes.size() - pos < kFrameBytes)
            break;  // torn frame header
        uint32_t len = 0, crc = 0;
        std::memcpy(&len, bytes.data() + pos, sizeof(len));
        std::memcpy(&crc, bytes.data() + pos + sizeof(len),
                    sizeof(crc));
        if (len > bytes.size() - pos - kFrameBytes)
            break;  // record truncated mid-payload
        std::string_view payload(bytes.data() + pos + kFrameBytes,
                                 len);
        if (util::crc32(payload) != crc)
            break;  // torn or bit-rotted record
        try {
            ByteReader r(payload);
            Key key;
            key.app = r.u32();
            key.alg = r.u32();
            key.processors = r.u32();
            key.contexts = r.u32();
            key.infiniteCache = r.u8();
            RunResult result = readResult(r);
            util::fatalIf(!r.done(),
                          "checkpoint record has trailing bytes");
            results_[key] = std::move(result);
        } catch (const util::FatalError &) {
            break;  // malformed payload despite a valid CRC frame
        }
        pos += kFrameBytes + len;
        good = pos;
    }

    dropped_ = bytes.size() - good;
    if (dropped_ > 0) {
        util::warn(util::concat(
            "checkpoint ", path_, ": dropping ", dropped_,
            " trailing bytes (truncated or corrupt record, likely a "
            "killed sweep); ", results_.size(),
            " intact results recovered"));
    }
    journal_ = bytes.substr(0, good);
}

std::optional<RunResult>
Checkpoint::lookup(const RunJob &job) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = results_.find(keyOf(job));
    if (it == results_.end())
        return std::nullopt;
    return it->second;
}

void
Checkpoint::record(const RunJob &job, const RunResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Key key = keyOf(job);
    if (results_.count(key))
        return;

    ByteWriter payload;
    payload.u32(key.app);
    payload.u32(key.alg);
    payload.u32(key.processors);
    payload.u32(key.contexts);
    payload.u8(key.infiniteCache);
    writeResult(payload, result);

    ByteWriter frame;
    frame.u32(static_cast<uint32_t>(payload.bytes().size()));
    frame.u32(util::crc32(payload.bytes()));

    journal_ += frame.bytes();
    journal_ += payload.bytes();
    results_[key] = result;
    persist();
    obs::checkpointAppends().inc();
}

void
Checkpoint::persist() const
{
    // Atomic publish: whole journal to .tmp, then rename over the
    // real file, retried on transient filesystem failures. A kill at
    // any instant leaves either the old or the new journal intact.
    std::string tmp = path_ + ".tmp";
    util::retry(
        [&] {
            TSP_FAULT_POINT("checkpoint.append");
            std::ofstream os(tmp,
                             std::ios::binary | std::ios::trunc);
            util::fatalIf(
                !os, "cannot open checkpoint for writing: " + tmp);
            os.write(journal_.data(),
                     static_cast<std::streamsize>(journal_.size()));
            os.flush();
            util::fatalIf(!os, "checkpoint write failed: " + tmp);
            os.close();
            TSP_FAULT_POINT("checkpoint.rename");
            util::fatalIf(
                std::rename(tmp.c_str(), path_.c_str()) != 0,
                "cannot publish checkpoint: " + path_);
        },
        util::jitteredRetryPolicy(path_), "checkpoint append " + path_);
}

} // namespace tsp::experiment
