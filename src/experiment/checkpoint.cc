#include "experiment/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "experiment/parallel.h"
#include "experiment/run_codec.h"
#include "fault/fault.h"
#include "obs/metric_defs.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/retry.h"

namespace tsp::experiment {

namespace {

constexpr char kMagic[4] = {'T', 'S', 'P', 'C'};
// v2: job keys carry the memory-system variant; RunResult payloads
// carry the shared-L2 counters.
constexpr uint32_t kVersion = 2;
constexpr size_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(uint32_t);
constexpr size_t kFrameBytes = 2 * sizeof(uint32_t);

} // namespace

// ------------------------------------------------------------ Checkpoint

Checkpoint::Key
Checkpoint::keyOf(const RunJob &job)
{
    Key key;
    key.app = static_cast<uint32_t>(job.app);
    key.alg = static_cast<uint32_t>(job.alg);
    key.processors = job.point.processors;
    key.contexts = job.point.contexts;
    key.infiniteCache = job.infiniteCache ? 1 : 0;
    key.memSystem = static_cast<uint8_t>(job.memSystem);
    return key;
}

Checkpoint::Checkpoint(std::string path, uint32_t scale)
    : path_(std::move(path)), scale_(scale)
{
    codec::ByteWriter header;
    header.raw(kMagic, sizeof(kMagic));
    header.u32(kVersion);
    header.u32(scale_);
    journal_ = header.bytes();
    load();
}

size_t
Checkpoint::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return results_.size();
}

void
Checkpoint::load()
{
    std::ifstream is(path_, std::ios::binary);
    if (!is)
        return;  // no journal yet: start fresh
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string bytes = buf.str();

    util::fatalIf(bytes.size() < kHeaderBytes ||
                      std::memcmp(bytes.data(), kMagic,
                                  sizeof(kMagic)) != 0,
                  "not a TSPC checkpoint journal: " + path_);
    uint32_t version = 0, scale = 0;
    std::memcpy(&version, bytes.data() + sizeof(kMagic),
                sizeof(version));
    std::memcpy(&scale, bytes.data() + sizeof(kMagic) + sizeof(version),
                sizeof(scale));
    util::fatalIf(version != kVersion,
                  util::concat("unsupported checkpoint version ",
                               version, " in ", path_));
    util::fatalIf(scale != scale_,
                  util::concat("checkpoint ", path_,
                               " was written at workload scale ",
                               scale, ", this lab runs at scale ",
                               scale_));

    size_t pos = kHeaderBytes;
    size_t good = pos;
    while (pos < bytes.size()) {
        if (bytes.size() - pos < kFrameBytes)
            break;  // torn frame header
        uint32_t len = 0, crc = 0;
        std::memcpy(&len, bytes.data() + pos, sizeof(len));
        std::memcpy(&crc, bytes.data() + pos + sizeof(len),
                    sizeof(crc));
        if (len > bytes.size() - pos - kFrameBytes)
            break;  // record truncated mid-payload
        std::string_view payload(bytes.data() + pos + kFrameBytes,
                                 len);
        if (util::crc32(payload) != crc)
            break;  // torn or bit-rotted record
        try {
            codec::ByteReader r(payload);
            Key key;
            key.app = r.u32();
            key.alg = r.u32();
            key.processors = r.u32();
            key.contexts = r.u32();
            key.infiniteCache = r.u8();
            key.memSystem = r.u8();
            RunResult result = codec::readRunResult(r);
            util::fatalIf(!r.done(),
                          "checkpoint record has trailing bytes");
            results_[key] = std::move(result);
        } catch (const util::FatalError &) {
            break;  // malformed payload despite a valid CRC frame
        }
        pos += kFrameBytes + len;
        good = pos;
    }

    dropped_ = bytes.size() - good;
    if (dropped_ > 0) {
        util::warn(util::concat(
            "checkpoint ", path_, ": dropping ", dropped_,
            " trailing bytes (truncated or corrupt record, likely a "
            "killed sweep); ", results_.size(),
            " intact results recovered"));
    }
    journal_ = bytes.substr(0, good);
}

std::optional<RunResult>
Checkpoint::lookup(const RunJob &job) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = results_.find(keyOf(job));
    if (it == results_.end())
        return std::nullopt;
    return it->second;
}

void
Checkpoint::record(const RunJob &job, const RunResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Key key = keyOf(job);
    if (results_.count(key))
        return;

    codec::ByteWriter payload;
    payload.u32(key.app);
    payload.u32(key.alg);
    payload.u32(key.processors);
    payload.u32(key.contexts);
    payload.u8(key.infiniteCache);
    payload.u8(key.memSystem);
    codec::writeRunResult(payload, result);

    codec::ByteWriter frame;
    frame.u32(static_cast<uint32_t>(payload.bytes().size()));
    frame.u32(util::crc32(payload.bytes()));

    journal_ += frame.bytes();
    journal_ += payload.bytes();
    results_[key] = result;
    persist();
    obs::checkpointAppends().inc();
}

void
Checkpoint::persist() const
{
    // Atomic publish: whole journal to .tmp, then rename over the
    // real file, retried on transient filesystem failures. A kill at
    // any instant leaves either the old or the new journal intact.
    std::string tmp = path_ + ".tmp";
    util::retry(
        [&] {
            TSP_FAULT_POINT("checkpoint.append");
            std::ofstream os(tmp,
                             std::ios::binary | std::ios::trunc);
            util::fatalIf(
                !os, "cannot open checkpoint for writing: " + tmp);
            os.write(journal_.data(),
                     static_cast<std::streamsize>(journal_.size()));
            os.flush();
            util::fatalIf(!os, "checkpoint write failed: " + tmp);
            os.close();
            TSP_FAULT_POINT("checkpoint.rename");
            util::fatalIf(
                std::rename(tmp.c_str(), path_.c_str()) != 0,
                "cannot publish checkpoint: " + path_);
        },
        util::jitteredRetryPolicy(path_), "checkpoint append " + path_);
}

} // namespace tsp::experiment
