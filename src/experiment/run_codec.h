/**
 * @file
 * Binary (de)serialization of RunResult, shared by every durable
 * artifact that persists completed cells: the TSPC checkpoint journal
 * (experiment::Checkpoint) and the TSPS content-addressed result
 * store (svc::ResultStore). One codec means one definition of
 * "bit-identical on replay" — a result written by either layer and
 * read back reproduces the original byte for byte.
 *
 * The writers emit fixed-width little-endian scalars with no framing;
 * framing (length + CRC-32) and file headers belong to the owning
 * format. ByteReader bounds-checks every read against the payload, so
 * a corrupt record fails fast (FatalError) instead of reading past
 * the buffer or allocating from attacker-shaped lengths.
 */

#ifndef TSP_EXPERIMENT_RUN_CODEC_H
#define TSP_EXPERIMENT_RUN_CODEC_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "experiment/lab.h"

namespace tsp::experiment::codec {

/** Append-only byte buffer with typed writers. */
class ByteWriter
{
  public:
    void
    raw(const void *data, size_t len)
    {
        bytes_.append(static_cast<const char *>(data), len);
    }

    void u8(uint8_t v) { raw(&v, sizeof(v)); }
    void u32(uint32_t v) { raw(&v, sizeof(v)); }
    void u64(uint64_t v) { raw(&v, sizeof(v)); }
    void f64(double v) { raw(&v, sizeof(v)); }

    const std::string &bytes() const { return bytes_; }

  private:
    std::string bytes_;
};

/** Bounds-checked reader over a record payload. */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

    void
    raw(void *out, size_t len)
    {
        util::fatalIf(len > bytes_.size() - pos_,
                      "serialized record truncated");
        std::memcpy(out, bytes_.data() + pos_, len);
        pos_ += len;
    }

    uint8_t
    u8()
    {
        uint8_t v;
        raw(&v, sizeof(v));
        return v;
    }

    uint32_t
    u32()
    {
        uint32_t v;
        raw(&v, sizeof(v));
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v;
        raw(&v, sizeof(v));
        return v;
    }

    double
    f64()
    {
        double v;
        raw(&v, sizeof(v));
        return v;
    }

    bool done() const { return pos_ == bytes_.size(); }

  private:
    std::string_view bytes_;
    size_t pos_ = 0;
};

/** Serialize @p result (placement, stats, derived figures). */
void writeRunResult(ByteWriter &w, const RunResult &result);

/**
 * Inverse of writeRunResult. Sizes are sanity-capped before any
 * allocation; a malformed payload throws FatalError.
 */
RunResult readRunResult(ByteReader &r);

} // namespace tsp::experiment::codec

#endif // TSP_EXPERIMENT_RUN_CODEC_H
