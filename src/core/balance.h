/**
 * @file
 * Balance constraints governing which cluster merges are permitted
 * (Section 2): thread-balance (each processor gets floor(t/p) or
 * ceil(t/p) threads) and load-balance (combined instruction load within
 * a slack of the ideal per-processor load; the paper uses ~10%).
 */

#ifndef TSP_CORE_BALANCE_H
#define TSP_CORE_BALANCE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cluster_set.h"

namespace tsp::placement {

/**
 * Exact feasibility oracle for the thread-balance criterion: can the
 * clusters with the given @p sizes still be merged down into exactly
 * @p processors clusters, each of size floor(t/p) or ceil(t/p)?
 *
 * This is a small bin-packing instance; we solve it exactly with
 * depth-first search. Thread counts in the workload are <= a few
 * hundred, so this is fast in practice.
 */
bool threadBalanceFeasible(std::vector<uint32_t> sizes,
                           uint32_t processors);

/**
 * Interface deciding whether two clusters may combine. Implementations
 * are consulted by the clustering engine after the sharing metric has
 * ranked candidate pairs (sharing first, balance second — Section 2).
 */
class BalanceConstraint
{
  public:
    virtual ~BalanceConstraint() = default;

    /** May clusters @p a and @p b of @p cs be merged? */
    virtual bool canMerge(const ClusterSet &cs, size_t a,
                          size_t b) const = 0;

    /**
     * Called when no candidate pair is mergeable but more merges are
     * needed. Returns true if the constraint relaxed itself and the
     * engine should retry, false if it cannot relax further.
     */
    virtual bool relax() { return false; }
};

/**
 * The paper's thread-balance criterion, backed by the exact feasibility
 * oracle so that a permitted merge can always be completed. relax() is
 * never needed.
 */
class ThreadBalanceConstraint : public BalanceConstraint
{
  public:
    ThreadBalanceConstraint(uint32_t threads, uint32_t processors);

    bool canMerge(const ClusterSet &cs, size_t a,
                  size_t b) const override;

  private:
    uint32_t processors_;
    uint32_t ceilSize_;
};

/**
 * The +LB criterion: a merge is allowed when the combined cluster load
 * does not exceed (1 + slack) of the ideal per-processor load. Starts
 * at the paper's 10% slack and relaxes geometrically when the engine
 * stalls (the paper resolves stalls by backtracking; relaxation reaches
 * the same end state without exponential search).
 */
class LoadBalanceConstraint : public BalanceConstraint
{
  public:
    /**
     * @param threadLength per-thread instruction counts
     * @param processors   target cluster count
     * @param slack        initial allowed excess over the ideal load
     */
    LoadBalanceConstraint(const std::vector<uint64_t> &threadLength,
                          uint32_t processors, double slack = 0.10);

    bool canMerge(const ClusterSet &cs, size_t a,
                  size_t b) const override;

    bool relax() override;

    /** Current slack value (grows only via relax()). */
    double slack() const { return slack_; }

  private:
    uint64_t clusterLoad(const ClusterSet &cs, size_t c) const;

    std::vector<uint64_t> threadLength_;
    double idealLoad_;
    double slack_;
};

} // namespace tsp::placement

#endif // TSP_CORE_BALANCE_H
