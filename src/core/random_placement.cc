#include "core/random_placement.h"

#include <numeric>
#include <vector>

#include "util/error.h"

namespace tsp::placement {

PlacementMap
randomPlacement(uint32_t threads, uint32_t processors, util::Rng &rng)
{
    util::fatalIf(processors == 0, "need >= 1 processor");
    std::vector<uint32_t> order(threads);
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);
    std::vector<uint32_t> procOf(threads, 0);
    for (uint32_t i = 0; i < threads; ++i)
        procOf[order[i]] = i % processors;
    return PlacementMap(processors, std::move(procOf));
}

} // namespace tsp::placement
