/**
 * @file
 * Working partition state for the iterative cluster-combining engine of
 * Section 2.1: every thread starts in its own cluster; clusters are
 * merged until exactly p remain.
 */

#ifndef TSP_CORE_CLUSTER_SET_H
#define TSP_CORE_CLUSTER_SET_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/placement_map.h"

namespace tsp::placement {

/**
 * A partition of threads into clusters supporting merge and undo.
 */
class ClusterSet
{
  public:
    /** Start with @p threads singleton clusters. */
    explicit ClusterSet(uint32_t threads);

    /** Current number of clusters. */
    size_t clusterCount() const { return clusters_.size(); }

    /** Total number of threads. */
    uint32_t threadCount() const { return threads_; }

    /** Members of cluster @p c. */
    const std::vector<uint32_t> &members(size_t c) const
    {
        return clusters_.at(c);
    }

    /** Size of cluster @p c. */
    size_t size(size_t c) const { return clusters_.at(c).size(); }

    /**
     * Merge cluster @p b into cluster @p a (a != b). Indices of later
     * clusters shift down by one; the merge is recorded for undo.
     */
    void merge(size_t a, size_t b);

    /** Undo the most recent merge. Returns false if none to undo. */
    bool undo();

    /**
     * Identity of the most recent merge as the pair (min member of the
     * destination half, min member of the source half), min-first.
     * Requires at least one merge on the undo stack.
     */
    std::pair<uint32_t, uint32_t> lastMergePair() const;

    /** Number of merges currently on the undo stack. */
    size_t mergeDepth() const { return undoStack_.size(); }

    /** Convert the current partition into a placement map. */
    PlacementMap toPlacement(uint32_t processors) const;

  private:
    struct MergeRecord
    {
        size_t dst;          //!< cluster that received the members
        size_t srcIndex;     //!< original index of the removed cluster
        size_t dstPrevSize;  //!< dst size before the merge
    };

    uint32_t threads_;
    std::vector<std::vector<uint32_t>> clusters_;
    std::vector<MergeRecord> undoStack_;
};

} // namespace tsp::placement

#endif // TSP_CORE_CLUSTER_SET_H
