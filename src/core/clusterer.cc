#include "core/clusterer.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "util/error.h"
#include "util/logging.h"

namespace tsp::placement {

namespace {

/**
 * State-independent identity of a candidate merge: the smallest thread
 * id in each cluster (cluster min-members are unique within a
 * partition).
 */
uint64_t
pairKey(const ClusterSet &cs, size_t a, size_t b)
{
    uint32_t ma = *std::min_element(cs.members(a).begin(),
                                    cs.members(a).end());
    uint32_t mb = *std::min_element(cs.members(b).begin(),
                                    cs.members(b).end());
    if (ma > mb)
        std::swap(ma, mb);
    return (static_cast<uint64_t>(ma) << 32) | mb;
}

/** A scored candidate pair. */
struct Candidate
{
    MergeScore score;
    size_t a;
    size_t b;
};

} // namespace

GreedyClusterer::GreedyClusterer(const SharingMetric &metric,
                                 BalanceConstraint &constraint,
                                 Options options)
    : metric_(metric), constraint_(constraint), options_(options)
{}

PlacementMap
GreedyClusterer::run(uint32_t threads, uint32_t processors)
{
    util::fatalIf(processors == 0, "need >= 1 processor");
    ClusterSet cs(threads);

    // If every thread already fits on its own processor, we are done
    // (Section 2.1, step 1).
    if (cs.clusterCount() <= processors)
        return cs.toPlacement(processors);

    // One forbidden-set frame per merge depth; frame d holds merges
    // proven fruitless in the partition state reached after d merges.
    std::vector<std::set<uint64_t>> forbidden(1);
    size_t backtracks = 0;

    while (cs.clusterCount() > processors) {
        // Step 2: score every cluster pair.
        std::vector<Candidate> candidates;
        const size_t k = cs.clusterCount();
        candidates.reserve(k * (k - 1) / 2);
        for (size_t a = 0; a < k; ++a)
            for (size_t b = a + 1; b < k; ++b)
                candidates.push_back({metric_.score(cs, a, b), a, b});
        std::sort(candidates.begin(), candidates.end(),
                  [](const Candidate &x, const Candidate &y) {
                      return y.score < x.score;  // descending
                  });

        // Step 3: take the best pair the constraint (and the forbidden
        // set) permits.
        const auto &banned = forbidden[cs.mergeDepth()];
        bool merged = false;
        for (const auto &cand : candidates) {
            if (banned.count(pairKey(cs, cand.a, cand.b)))
                continue;
            if (!constraint_.canMerge(cs, cand.a, cand.b))
                continue;
            cs.merge(cand.a, cand.b);
            forbidden.resize(cs.mergeDepth() + 1);
            forbidden.back().clear();
            if (observer_)
                observer_(cs, cand.a, cand.b, cand.score);
            merged = true;
            break;
        }
        if (merged)
            continue;

        // Stalled. Let the constraint relax itself first (load-balance
        // slack), then apply the paper's backtracking rule.
        if (constraint_.relax()) {
            util::debug("clusterer: constraint relaxed");
            continue;
        }
        util::fatalIf(++backtracks > options_.maxBacktracks,
                      "clustering exceeded backtrack budget");
        util::fatalIf(cs.mergeDepth() == 0,
                      "clustering infeasible: no merge sequence reaches "
                      "the requested processor count");
        // Undo the most recent merge and forbid exactly that merge in
        // the parent state (Section 2.1, step 4).
        auto [ma, mb] = cs.lastMergePair();
        uint64_t key = (static_cast<uint64_t>(ma) << 32) | mb;
        cs.undo();
        forbidden.resize(cs.mergeDepth() + 1);
        forbidden[cs.mergeDepth()].insert(key);
    }
    return cs.toPlacement(processors);
}

} // namespace tsp::placement
