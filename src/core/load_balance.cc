#include "core/load_balance.h"

#include <algorithm>
#include <numeric>

#include "util/bits.h"
#include "util/error.h"

namespace tsp::placement {

uint64_t
loadBalanceLowerBound(const std::vector<uint64_t> &threadLength,
                      uint32_t processors)
{
    util::fatalIf(processors == 0, "need >= 1 processor");
    uint64_t total = std::accumulate(threadLength.begin(),
                                     threadLength.end(), uint64_t{0});
    uint64_t longest = threadLength.empty()
        ? 0
        : *std::max_element(threadLength.begin(), threadLength.end());
    return std::max(util::divCeil(total, processors), longest);
}

PlacementMap
loadBalancedPlacement(const std::vector<uint64_t> &threadLength,
                      uint32_t processors)
{
    util::fatalIf(processors == 0, "need >= 1 processor");
    const size_t t = threadLength.size();
    std::vector<uint32_t> procOf(t, 0);
    if (t == 0)
        return PlacementMap(processors, std::move(procOf));

    // LPT: place each thread, longest first, on the least-loaded
    // processor.
    std::vector<uint32_t> order(t);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        if (threadLength[a] != threadLength[b])
            return threadLength[a] > threadLength[b];
        return a < b;  // deterministic tie-break
    });

    std::vector<uint64_t> load(processors, 0);
    for (uint32_t tid : order) {
        uint32_t target = static_cast<uint32_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        procOf[tid] = target;
        load[target] += threadLength[tid];
    }

    // Local search: try single-thread moves and pairwise swaps that
    // strictly reduce the peak load, until a fixed point (bounded).
    auto peakProc = [&]() {
        return static_cast<uint32_t>(
            std::max_element(load.begin(), load.end()) - load.begin());
    };
    for (int round = 0; round < 64; ++round) {
        uint32_t hot = peakProc();
        uint64_t peak = load[hot];
        bool improved = false;

        // Moves off the hottest processor.
        for (uint32_t tid = 0; tid < t && !improved; ++tid) {
            if (procOf[tid] != hot)
                continue;
            for (uint32_t p = 0; p < processors; ++p) {
                if (p == hot)
                    continue;
                uint64_t newDst = load[p] + threadLength[tid];
                if (newDst < peak) {
                    load[hot] -= threadLength[tid];
                    load[p] = newDst;
                    procOf[tid] = p;
                    improved = true;
                    break;
                }
            }
        }
        // Swaps between the hottest processor and any other.
        for (uint32_t a = 0; a < t && !improved; ++a) {
            if (procOf[a] != hot)
                continue;
            for (uint32_t b = 0; b < t && !improved; ++b) {
                uint32_t pb = procOf[b];
                if (pb == hot || threadLength[a] <= threadLength[b])
                    continue;
                uint64_t delta = threadLength[a] - threadLength[b];
                if (load[pb] + delta < peak) {
                    load[hot] -= delta;
                    load[pb] += delta;
                    std::swap(procOf[a], procOf[b]);
                    improved = true;
                }
            }
        }
        if (!improved)
            break;
    }

    return PlacementMap(processors, std::move(procOf));
}

} // namespace tsp::placement
