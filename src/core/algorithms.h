/**
 * @file
 * Registry of all placement algorithms evaluated in the paper, plus a
 * single entry point that builds a placement for any of them.
 */

#ifndef TSP_CORE_ALGORITHMS_H
#define TSP_CORE_ALGORITHMS_H

#include <optional>
#include <string>
#include <vector>

#include "analysis/static_analysis.h"
#include "core/placement_map.h"
#include "stats/pair_matrix.h"
#include "util/rng.h"

namespace tsp::placement {

/**
 * Every placement algorithm of Section 2 (plus the dynamic
 * coherence-traffic algorithm of Section 4.2).
 */
enum class Algorithm {
    ShareRefs,
    ShareAddr,
    MinPriv,
    MinInvs,
    MaxWrites,
    MinShare,
    ShareRefsLB,
    ShareAddrLB,
    MinPrivLB,
    MinInvsLB,
    MaxWritesLB,
    MinShareLB,
    LoadBal,
    Random,
    CoherenceTraffic,
    CoherenceTrafficLB,
};

/** Display name matching the paper's, e.g. "SHARE-REFS+LB". */
std::string algorithmName(Algorithm alg);

/** Parse a display name back to an Algorithm; nullopt on no match. */
std::optional<Algorithm> algorithmFromName(const std::string &name);

/** True for algorithms whose combining criterion involves sharing. */
bool isSharingBased(Algorithm alg);

/** True for +LB variants (load-balance instead of thread-balance). */
bool hasLoadBalanceCriterion(Algorithm alg);

/** True for the two dynamic coherence-traffic algorithms. */
bool needsCoherenceMatrix(Algorithm alg);

/** All algorithms in presentation order. */
const std::vector<Algorithm> &allAlgorithms();

/** The six static sharing-based algorithms (no +LB). */
const std::vector<Algorithm> &staticSharingAlgorithms();

/** All twelve static sharing-based algorithms (with +LB variants). */
const std::vector<Algorithm> &staticSharingAlgorithmsWithLB();

/** The algorithm set the execution-time figures sweep. */
const std::vector<Algorithm> &figureAlgorithms();

/**
 * Build the placement of @p alg for the analyzed application on
 * @p processors processors.
 *
 * @param analysis  static analysis of the application's traces
 * @param processors target processor count
 * @param rng       consumed only by Random
 * @param coherence measured thread-pair coherence traffic; required by
 *                  (and only by) the CoherenceTraffic algorithms
 */
PlacementMap place(Algorithm alg,
                   const analysis::StaticAnalysis &analysis,
                   uint32_t processors, util::Rng &rng,
                   const stats::PairMatrix *coherence = nullptr);

} // namespace tsp::placement

#endif // TSP_CORE_ALGORITHMS_H
