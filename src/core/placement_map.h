/**
 * @file
 * The output of every placement algorithm: a static assignment of
 * threads to processors ("placement map", Section 2). The map never
 * changes during simulation.
 */

#ifndef TSP_CORE_PLACEMENT_MAP_H
#define TSP_CORE_PLACEMENT_MAP_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tsp::placement {

/**
 * Thread -> processor assignment for one application run.
 */
class PlacementMap
{
  public:
    PlacementMap() = default;

    /**
     * Construct from an assignment vector: @p procOf[tid] is the
     * processor of thread tid. @p processors must cover every entry.
     */
    PlacementMap(uint32_t processors, std::vector<uint32_t> procOf);

    /** Number of processors. */
    uint32_t processors() const { return processors_; }

    /** Number of threads. */
    size_t threadCount() const { return procOf_.size(); }

    /** Processor of thread @p tid. */
    uint32_t processorOf(uint32_t tid) const { return procOf_.at(tid); }

    /** Raw assignment vector. */
    const std::vector<uint32_t> &assignment() const { return procOf_; }

    /** Thread ids grouped per processor (the clusters). */
    std::vector<std::vector<uint32_t>> clusters() const;

    /** Number of threads on each processor. */
    std::vector<uint32_t> threadsPerProcessor() const;

    /**
     * True when every processor holds floor(t/p) or ceil(t/p) threads
     * (the paper's thread-balance criterion).
     */
    bool isThreadBalanced() const;

    /** Per-processor instruction load given per-thread lengths. */
    std::vector<uint64_t>
    processorLoads(const std::vector<uint64_t> &threadLength) const;

    /**
     * Load imbalance: max processor load divided by the ideal
     * (total / processors). 1.0 is a perfect balance.
     */
    double loadImbalance(const std::vector<uint64_t> &threadLength) const;

    /** Human-readable one-line rendering (for logs and examples). */
    std::string describe() const;

  private:
    uint32_t processors_ = 0;
    std::vector<uint32_t> procOf_;
};

} // namespace tsp::placement

#endif // TSP_CORE_PLACEMENT_MAP_H
