#include "core/algorithms.h"

#include <memory>

#include "core/balance.h"
#include "core/clusterer.h"
#include "core/load_balance.h"
#include "core/metrics.h"
#include "core/random_placement.h"
#include "util/error.h"

namespace tsp::placement {

std::string
algorithmName(Algorithm alg)
{
    switch (alg) {
      case Algorithm::ShareRefs:          return "SHARE-REFS";
      case Algorithm::ShareAddr:          return "SHARE-ADDR";
      case Algorithm::MinPriv:            return "MIN-PRIV";
      case Algorithm::MinInvs:            return "MIN-INVS";
      case Algorithm::MaxWrites:          return "MAX-WRITES";
      case Algorithm::MinShare:           return "MIN-SHARE";
      case Algorithm::ShareRefsLB:        return "SHARE-REFS+LB";
      case Algorithm::ShareAddrLB:        return "SHARE-ADDR+LB";
      case Algorithm::MinPrivLB:          return "MIN-PRIV+LB";
      case Algorithm::MinInvsLB:          return "MIN-INVS+LB";
      case Algorithm::MaxWritesLB:        return "MAX-WRITES+LB";
      case Algorithm::MinShareLB:         return "MIN-SHARE+LB";
      case Algorithm::LoadBal:            return "LOAD-BAL";
      case Algorithm::Random:             return "RANDOM";
      case Algorithm::CoherenceTraffic:   return "COHERENCE";
      case Algorithm::CoherenceTrafficLB: return "COHERENCE+LB";
    }
    util::panic("unknown algorithm");
}

std::optional<Algorithm>
algorithmFromName(const std::string &name)
{
    for (Algorithm alg : allAlgorithms())
        if (algorithmName(alg) == name)
            return alg;
    return std::nullopt;
}

bool
isSharingBased(Algorithm alg)
{
    switch (alg) {
      case Algorithm::LoadBal:
      case Algorithm::Random:
        return false;
      default:
        return true;
    }
}

bool
hasLoadBalanceCriterion(Algorithm alg)
{
    switch (alg) {
      case Algorithm::ShareRefsLB:
      case Algorithm::ShareAddrLB:
      case Algorithm::MinPrivLB:
      case Algorithm::MinInvsLB:
      case Algorithm::MaxWritesLB:
      case Algorithm::MinShareLB:
      case Algorithm::CoherenceTrafficLB:
      case Algorithm::LoadBal:
        return true;
      default:
        return false;
    }
}

bool
needsCoherenceMatrix(Algorithm alg)
{
    return alg == Algorithm::CoherenceTraffic ||
           alg == Algorithm::CoherenceTrafficLB;
}

const std::vector<Algorithm> &
allAlgorithms()
{
    static const std::vector<Algorithm> all = {
        Algorithm::ShareRefs,    Algorithm::ShareAddr,
        Algorithm::MinPriv,      Algorithm::MinInvs,
        Algorithm::MaxWrites,    Algorithm::MinShare,
        Algorithm::ShareRefsLB,  Algorithm::ShareAddrLB,
        Algorithm::MinPrivLB,    Algorithm::MinInvsLB,
        Algorithm::MaxWritesLB,  Algorithm::MinShareLB,
        Algorithm::LoadBal,      Algorithm::Random,
        Algorithm::CoherenceTraffic, Algorithm::CoherenceTrafficLB,
    };
    return all;
}

const std::vector<Algorithm> &
staticSharingAlgorithms()
{
    static const std::vector<Algorithm> algs = {
        Algorithm::ShareRefs, Algorithm::ShareAddr, Algorithm::MinPriv,
        Algorithm::MinInvs,   Algorithm::MaxWrites, Algorithm::MinShare,
    };
    return algs;
}

const std::vector<Algorithm> &
staticSharingAlgorithmsWithLB()
{
    static const std::vector<Algorithm> algs = {
        Algorithm::ShareRefs,   Algorithm::ShareAddr,
        Algorithm::MinPriv,     Algorithm::MinInvs,
        Algorithm::MaxWrites,   Algorithm::MinShare,
        Algorithm::ShareRefsLB, Algorithm::ShareAddrLB,
        Algorithm::MinPrivLB,   Algorithm::MinInvsLB,
        Algorithm::MaxWritesLB, Algorithm::MinShareLB,
    };
    return algs;
}

const std::vector<Algorithm> &
figureAlgorithms()
{
    // The execution-time figures compare the static sharing algorithms,
    // their +LB variants, LOAD-BAL and RANDOM.
    static const std::vector<Algorithm> algs = {
        Algorithm::ShareRefs,   Algorithm::ShareAddr,
        Algorithm::MinPriv,     Algorithm::MinInvs,
        Algorithm::MaxWrites,   Algorithm::MinShare,
        Algorithm::ShareRefsLB, Algorithm::MinShareLB,
        Algorithm::LoadBal,     Algorithm::Random,
    };
    return algs;
}

namespace {

/** Build the metric object for a sharing-based algorithm. */
std::unique_ptr<SharingMetric>
makeMetric(Algorithm alg, const analysis::StaticAnalysis &analysis,
           const stats::PairMatrix *coherence)
{
    switch (alg) {
      case Algorithm::ShareRefs:
      case Algorithm::ShareRefsLB:
        return std::make_unique<ShareRefsMetric>(analysis);
      case Algorithm::ShareAddr:
      case Algorithm::ShareAddrLB:
        return std::make_unique<ShareAddrMetric>(analysis);
      case Algorithm::MinPriv:
      case Algorithm::MinPrivLB:
        return std::make_unique<MinPrivMetric>(analysis);
      case Algorithm::MinInvs:
      case Algorithm::MinInvsLB:
        return std::make_unique<MinInvsMetric>(analysis);
      case Algorithm::MaxWrites:
      case Algorithm::MaxWritesLB:
        return std::make_unique<MaxWritesMetric>(analysis);
      case Algorithm::MinShare:
      case Algorithm::MinShareLB:
        return std::make_unique<MinShareMetric>(analysis);
      case Algorithm::CoherenceTraffic:
      case Algorithm::CoherenceTrafficLB:
        util::fatalIf(coherence == nullptr,
                      "coherence-traffic placement needs a measured "
                      "coherence matrix");
        return std::make_unique<CoherenceTrafficMetric>(*coherence);
      default:
        util::panic("not a sharing-based algorithm");
    }
}

} // namespace

PlacementMap
place(Algorithm alg, const analysis::StaticAnalysis &analysis,
      uint32_t processors, util::Rng &rng,
      const stats::PairMatrix *coherence)
{
    const uint32_t t = static_cast<uint32_t>(analysis.threadCount());
    util::fatalIf(processors == 0, "need >= 1 processor");

    switch (alg) {
      case Algorithm::LoadBal:
        return loadBalancedPlacement(analysis.threadLength(), processors);
      case Algorithm::Random:
        return randomPlacement(t, processors, rng);
      default:
        break;
    }

    auto metric = makeMetric(alg, analysis, coherence);
    if (hasLoadBalanceCriterion(alg)) {
        LoadBalanceConstraint constraint(analysis.threadLength(),
                                         processors);
        GreedyClusterer engine(*metric, constraint);
        return engine.run(t, processors);
    }
    ThreadBalanceConstraint constraint(t, processors);
    GreedyClusterer engine(*metric, constraint);
    return engine.run(t, processors);
}

} // namespace tsp::placement
