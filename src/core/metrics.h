/**
 * @file
 * Sharing metrics for the cluster-combining engine. Each metric ranks
 * candidate cluster pairs; the engine merges the highest-ranked pair the
 * balance constraint allows (Section 2.1, step 2).
 *
 * All pair-averaged metrics use the paper's normalization: the sum of
 * shared references between cross-cluster thread pairs divided by
 * |c_a| * |c_b|, so clusters of unequal size compare fairly.
 */

#ifndef TSP_CORE_METRICS_H
#define TSP_CORE_METRICS_H

#include <cstddef>
#include <memory>
#include <string>

#include "analysis/static_analysis.h"
#include "core/cluster_set.h"
#include "stats/pair_matrix.h"

namespace tsp::placement {

/**
 * Score assigned to a candidate merge: candidates are ordered by
 * primary, then by tiebreak (both descending).
 */
struct MergeScore
{
    double primary = 0.0;
    double tiebreak = 0.0;

    bool
    operator<(const MergeScore &o) const
    {
        if (primary != o.primary)
            return primary < o.primary;
        return tiebreak < o.tiebreak;
    }
};

/**
 * Interface of a cluster-pair sharing metric.
 */
class SharingMetric
{
  public:
    virtual ~SharingMetric() = default;

    /** Metric name for reports. */
    virtual std::string name() const = 0;

    /** Score for merging clusters @p a and @p b of @p cs. */
    virtual MergeScore score(const ClusterSet &cs, size_t a,
                             size_t b) const = 0;
};

/** Averaged cross-cluster sum over an arbitrary pair matrix. */
double pairAverage(const stats::PairMatrix &m, const ClusterSet &cs,
                   size_t a, size_t b);

/** Raw (unnormalized) cross-cluster sum over a pair matrix. */
double pairSum(const stats::PairMatrix &m, const ClusterSet &cs,
               size_t a, size_t b);

/**
 * SHARE-REFS: maximize averaged shared references between the clusters
 * being combined.
 */
class ShareRefsMetric : public SharingMetric
{
  public:
    explicit ShareRefsMetric(const analysis::StaticAnalysis &a)
        : analysis_(a)
    {}

    std::string name() const override { return "SHARE-REFS"; }
    MergeScore score(const ClusterSet &cs, size_t a,
                     size_t b) const override;

  protected:
    const analysis::StaticAnalysis &analysis_;
};

/**
 * SHARE-ADDR: like SHARE-REFS, but among candidates with equal shared
 * references prefer the pair with the smaller shared working set (more
 * references per shared address).
 */
class ShareAddrMetric : public ShareRefsMetric
{
  public:
    using ShareRefsMetric::ShareRefsMetric;

    std::string name() const override { return "SHARE-ADDR"; }
    MergeScore score(const ClusterSet &cs, size_t a,
                     size_t b) const override;
};

/**
 * MIN-PRIV: like SHARE-REFS, and additionally minimize the number of
 * private (unshared) addresses co-located on a processor.
 */
class MinPrivMetric : public ShareRefsMetric
{
  public:
    using ShareRefsMetric::ShareRefsMetric;

    std::string name() const override { return "MIN-PRIV"; }
    MergeScore score(const ClusterSet &cs, size_t a,
                     size_t b) const override;
};

/**
 * MIN-INVS: minimize cross-processor shared references. Combining the
 * pair with the largest *unnormalized* cross-cluster sharing removes the
 * most would-be invalidation traffic from the interconnect; the raw sum
 * is exactly the cost of keeping the two clusters separated.
 */
class MinInvsMetric : public ShareRefsMetric
{
  public:
    using ShareRefsMetric::ShareRefsMetric;

    std::string name() const override { return "MIN-INVS"; }
    MergeScore score(const ClusterSet &cs, size_t a,
                     size_t b) const override;
};

/**
 * MAX-WRITES: SHARE-REFS restricted to write-shared data, the data that
 * actually causes invalidations.
 */
class MaxWritesMetric : public ShareRefsMetric
{
  public:
    using ShareRefsMetric::ShareRefsMetric;

    std::string name() const override { return "MAX-WRITES"; }
    MergeScore score(const ClusterSet &cs, size_t a,
                     size_t b) const override;
};

/**
 * MIN-SHARE: the deliberate worst case — co-locate threads with the
 * least mutual sharing to bound the performance range of sharing
 * effects.
 */
class MinShareMetric : public ShareRefsMetric
{
  public:
    using ShareRefsMetric::ShareRefsMetric;

    std::string name() const override { return "MIN-SHARE"; }
    MergeScore score(const ClusterSet &cs, size_t a,
                     size_t b) const override;
};

/**
 * COHERENCE-TRAFFIC: uses a dynamically measured thread-pair coherence
 * traffic matrix (from a one-thread-per-processor simulation) instead of
 * static shared-reference counts — the best case a sharing-based
 * placement could achieve (Section 4.2).
 */
class CoherenceTrafficMetric : public SharingMetric
{
  public:
    explicit CoherenceTrafficMetric(stats::PairMatrix traffic)
        : traffic_(std::move(traffic))
    {}

    std::string name() const override { return "COHERENCE-TRAFFIC"; }
    MergeScore score(const ClusterSet &cs, size_t a,
                     size_t b) const override;

  private:
    stats::PairMatrix traffic_;
};

} // namespace tsp::placement

#endif // TSP_CORE_METRICS_H
