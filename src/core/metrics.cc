#include "core/metrics.h"

namespace tsp::placement {

double
pairSum(const stats::PairMatrix &m, const ClusterSet &cs, size_t a,
        size_t b)
{
    return m.crossSum(cs.members(a), cs.members(b));
}

double
pairAverage(const stats::PairMatrix &m, const ClusterSet &cs, size_t a,
            size_t b)
{
    double denom = static_cast<double>(cs.size(a)) *
                   static_cast<double>(cs.size(b));
    return pairSum(m, cs, a, b) / denom;
}

MergeScore
ShareRefsMetric::score(const ClusterSet &cs, size_t a, size_t b) const
{
    return {pairAverage(analysis_.sharedRefs(), cs, a, b), 0.0};
}

MergeScore
ShareAddrMetric::score(const ClusterSet &cs, size_t a, size_t b) const
{
    // Fewer distinct shared addresses for the same shared references
    // means a denser shared working set: prefer it.
    double refs = pairAverage(analysis_.sharedRefs(), cs, a, b);
    double addrs = pairAverage(analysis_.sharedAddrs(), cs, a, b);
    return {refs, -addrs};
}

MergeScore
MinPrivMetric::score(const ClusterSet &cs, size_t a, size_t b) const
{
    double refs = pairAverage(analysis_.sharedRefs(), cs, a, b);
    double priv = 0.0;
    for (uint32_t tid : cs.members(a))
        priv += static_cast<double>(analysis_.threadPrivateAddrs()[tid]);
    for (uint32_t tid : cs.members(b))
        priv += static_cast<double>(analysis_.threadPrivateAddrs()[tid]);
    return {refs, -priv};
}

MergeScore
MinInvsMetric::score(const ClusterSet &cs, size_t a, size_t b) const
{
    return {pairSum(analysis_.sharedRefs(), cs, a, b), 0.0};
}

MergeScore
MaxWritesMetric::score(const ClusterSet &cs, size_t a, size_t b) const
{
    return {pairAverage(analysis_.writeSharedRefs(), cs, a, b), 0.0};
}

MergeScore
MinShareMetric::score(const ClusterSet &cs, size_t a, size_t b) const
{
    return {-pairAverage(analysis_.sharedRefs(), cs, a, b), 0.0};
}

MergeScore
CoherenceTrafficMetric::score(const ClusterSet &cs, size_t a,
                              size_t b) const
{
    return {pairAverage(traffic_, cs, a, b), 0.0};
}

} // namespace tsp::placement
