/**
 * @file
 * RANDOM (Section 2, item 9): a random thread-balanced placement — the
 * paper's baseline, approximating what a low-overhead runtime scheduler
 * with no application knowledge would produce.
 */

#ifndef TSP_CORE_RANDOM_PLACEMENT_H
#define TSP_CORE_RANDOM_PLACEMENT_H

#include <cstdint>

#include "core/placement_map.h"
#include "util/rng.h"

namespace tsp::placement {

/**
 * Uniformly random thread-balanced placement of @p threads threads
 * onto @p processors processors.
 */
PlacementMap randomPlacement(uint32_t threads, uint32_t processors,
                             util::Rng &rng);

} // namespace tsp::placement

#endif // TSP_CORE_RANDOM_PLACEMENT_H
