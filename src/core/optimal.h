/**
 * @file
 * Exhaustive placement oracles for small thread counts: the true
 * optimal load-balanced placement (minimum makespan) and the true
 * maximum-sharing thread-balanced placement. Used by the test suite
 * to bound how far the production heuristics (LPT + refinement, the
 * greedy cluster-combining engine) sit from optimal, and by the
 * ablation benches to show that even *optimal* sharing capture does
 * not buy execution time — a stronger form of the paper's negative
 * result.
 */

#ifndef TSP_CORE_OPTIMAL_H
#define TSP_CORE_OPTIMAL_H

#include <cstdint>
#include <vector>

#include "core/placement_map.h"
#include "stats/pair_matrix.h"

namespace tsp::placement {

/** Result of an exhaustive search. */
struct OptimalResult
{
    PlacementMap map;

    /** Makespan (cycles) or captured sharing, per the oracle. */
    double value = 0.0;

    /** Number of complete assignments examined (diagnostics). */
    uint64_t explored = 0;
};

/** Largest thread count the oracles accept. */
constexpr uint32_t maxOracleThreads = 16;

/**
 * Minimum-makespan assignment of threads with the given lengths onto
 * @p processors processors (no balance constraint — the LOAD-BAL
 * ideal). Exhaustive with symmetry pruning; requires
 * threads <= maxOracleThreads.
 */
OptimalResult optimalMakespan(const std::vector<uint64_t> &threadLength,
                              uint32_t processors);

/**
 * Thread-balanced placement maximizing intra-cluster sharing (the sum
 * of pairwise shared references within processors) — the ideal every
 * sharing-based algorithm of Section 2 approximates. Requires
 * sharing.size() <= maxOracleThreads.
 */
OptimalResult optimalSharingCapture(const stats::PairMatrix &sharing,
                                    uint32_t processors);

} // namespace tsp::placement

#endif // TSP_CORE_OPTIMAL_H
