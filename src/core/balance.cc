#include "core/balance.h"

#include <algorithm>
#include <numeric>

#include "util/bits.h"
#include "util/error.h"

namespace tsp::placement {

namespace {

/**
 * DFS bin packing: place each cluster size into one of the remaining
 * bins (capacities are floor or ceil thread counts) so every bin is
 * filled exactly.
 */
bool
packExact(std::vector<uint32_t> &sizes, std::vector<uint32_t> &binLeft,
          size_t next)
{
    if (next == sizes.size()) {
        return std::all_of(binLeft.begin(), binLeft.end(),
                           [](uint32_t left) { return left == 0; });
    }
    uint32_t need = sizes[next];
    uint32_t tried0 = UINT32_MAX, tried1 = UINT32_MAX;
    for (size_t b = 0; b < binLeft.size(); ++b) {
        // Only try one bin per distinct remaining capacity.
        if (binLeft[b] == tried0 || binLeft[b] == tried1)
            continue;
        if (binLeft[b] < need) {
            if (tried0 == UINT32_MAX)
                tried0 = binLeft[b];
            else
                tried1 = binLeft[b];
            continue;
        }
        if (tried0 == UINT32_MAX)
            tried0 = binLeft[b];
        else if (tried1 == UINT32_MAX)
            tried1 = binLeft[b];
        binLeft[b] -= need;
        if (packExact(sizes, binLeft, next + 1))
            return true;
        binLeft[b] += need;
    }
    return false;
}

} // namespace

bool
threadBalanceFeasible(std::vector<uint32_t> sizes, uint32_t processors)
{
    util::fatalIf(processors == 0, "need >= 1 processor");
    uint32_t t = std::accumulate(sizes.begin(), sizes.end(), 0u);
    if (t == 0)
        return true;
    if (t < processors) {
        // Some processors stay empty; every cluster must be a singleton.
        return std::all_of(sizes.begin(), sizes.end(),
                           [](uint32_t s) { return s == 1; });
    }
    if (sizes.size() < processors)
        return false;  // merging only shrinks the cluster count

    uint32_t lo = t / processors;
    uint32_t hi = static_cast<uint32_t>(util::divCeil(t, processors));
    uint32_t numHi = t % processors;  // bins that must hold ceil threads

    std::vector<uint32_t> binLeft;
    for (uint32_t b = 0; b < processors; ++b)
        binLeft.push_back(b < numHi ? hi : lo);

    // Largest-first ordering prunes the DFS dramatically.
    std::sort(sizes.begin(), sizes.end(), std::greater<>());
    if (!sizes.empty() && sizes.front() > hi)
        return false;
    return packExact(sizes, binLeft, 0);
}

ThreadBalanceConstraint::ThreadBalanceConstraint(uint32_t threads,
                                                 uint32_t processors)
    : processors_(processors),
      ceilSize_(static_cast<uint32_t>(util::divCeil(threads, processors)))
{
    util::fatalIf(processors == 0, "need >= 1 processor");
}

bool
ThreadBalanceConstraint::canMerge(const ClusterSet &cs, size_t a,
                                  size_t b) const
{
    size_t merged = cs.size(a) + cs.size(b);
    if (merged > ceilSize_)
        return false;
    std::vector<uint32_t> sizes;
    sizes.reserve(cs.clusterCount() - 1);
    for (size_t c = 0; c < cs.clusterCount(); ++c) {
        if (c == a || c == b)
            continue;
        sizes.push_back(static_cast<uint32_t>(cs.size(c)));
    }
    sizes.push_back(static_cast<uint32_t>(merged));
    return threadBalanceFeasible(std::move(sizes), processors_);
}

LoadBalanceConstraint::LoadBalanceConstraint(
    const std::vector<uint64_t> &threadLength, uint32_t processors,
    double slack)
    : threadLength_(threadLength), slack_(slack)
{
    util::fatalIf(processors == 0, "need >= 1 processor");
    uint64_t total = std::accumulate(threadLength.begin(),
                                     threadLength.end(), uint64_t{0});
    idealLoad_ = static_cast<double>(total) /
                 static_cast<double>(processors);
}

uint64_t
LoadBalanceConstraint::clusterLoad(const ClusterSet &cs, size_t c) const
{
    uint64_t load = 0;
    for (uint32_t tid : cs.members(c))
        load += threadLength_.at(tid);
    return load;
}

bool
LoadBalanceConstraint::canMerge(const ClusterSet &cs, size_t a,
                                size_t b) const
{
    double merged = static_cast<double>(clusterLoad(cs, a) +
                                        clusterLoad(cs, b));
    return merged <= idealLoad_ * (1.0 + slack_);
}

bool
LoadBalanceConstraint::relax()
{
    if (slack_ > 8.0)
        return false;
    slack_ = slack_ * 1.5 + 0.01;
    return true;
}

} // namespace tsp::placement
