/**
 * @file
 * LOAD-BAL (Section 2, item 7): placement by dynamic thread length
 * alone, producing a (near-)perfectly load balanced execution. We use
 * longest-processing-time-first assignment followed by local-search
 * refinement (moves and swaps that lower the peak load), which for the
 * paper's thread counts reaches the optimum or within a fraction of a
 * percent of it.
 */

#ifndef TSP_CORE_LOAD_BALANCE_H
#define TSP_CORE_LOAD_BALANCE_H

#include <cstdint>
#include <vector>

#include "core/placement_map.h"

namespace tsp::placement {

/**
 * Build the LOAD-BAL placement for threads of the given dynamic
 * lengths onto @p processors processors.
 */
PlacementMap loadBalancedPlacement(
    const std::vector<uint64_t> &threadLength, uint32_t processors);

/**
 * Makespan lower bound used by tests: max(total/p, longest thread).
 */
uint64_t loadBalanceLowerBound(const std::vector<uint64_t> &threadLength,
                               uint32_t processors);

} // namespace tsp::placement

#endif // TSP_CORE_LOAD_BALANCE_H
