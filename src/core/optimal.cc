#include "core/optimal.h"

#include <algorithm>

#include "util/bits.h"
#include "util/error.h"

namespace tsp::placement {

namespace {

/**
 * Shared DFS driver: assigns threads one by one to processors with
 * first-empty-bin symmetry pruning (a thread may open at most one new
 * empty bin, eliminating permutations of identical bins).
 */
class Search
{
  public:
    Search(uint32_t threads, uint32_t processors)
        : threads_(threads), processors_(processors),
          assign_(threads, 0)
    {}

    virtual ~Search() = default;

    OptimalResult
    run()
    {
        best_ = std::vector<uint32_t>();
        dfs(0, 0);
        util::panicIf(best_.empty(), "oracle found no assignment");
        OptimalResult result{PlacementMap(processors_, best_),
                             bestValue_, explored_};
        return result;
    }

  protected:
    /** May thread @p tid go on processor @p proc right now? */
    virtual bool feasible(uint32_t tid, uint32_t proc) = 0;

    /** Apply / revert the assignment (update incremental state). */
    virtual void place(uint32_t tid, uint32_t proc) = 0;
    virtual void unplace(uint32_t tid, uint32_t proc) = 0;

    /** Is the complete assignment valid, and what is its value? */
    virtual bool complete(double &value) = 0;

    /** True when @p value beats @p incumbent. */
    virtual bool better(double value, double incumbent) const = 0;

    /** Hook: a new best complete assignment of @p value was found. */
    virtual void onIncumbent(double value) { (void)value; }

    uint32_t threads_;
    uint32_t processors_;
    std::vector<uint32_t> assign_;

  private:
    void
    dfs(uint32_t tid, uint32_t usedBins)
    {
        if (tid == threads_) {
            ++explored_;
            double value = 0.0;
            if (!complete(value))
                return;
            if (best_.empty() || better(value, bestValue_)) {
                best_ = assign_;
                bestValue_ = value;
                onIncumbent(value);
            }
            return;
        }
        uint32_t limit = std::min(processors_, usedBins + 1);
        for (uint32_t p = 0; p < limit; ++p) {
            if (!feasible(tid, p))
                continue;
            assign_[tid] = p;
            place(tid, p);
            dfs(tid + 1, std::max(usedBins, p + 1));
            unplace(tid, p);
        }
    }

    std::vector<uint32_t> best_;
    double bestValue_ = 0.0;
    uint64_t explored_ = 0;
};

/** Minimum makespan search with branch-and-bound on the peak load. */
class MakespanSearch : public Search
{
  public:
    MakespanSearch(const std::vector<uint64_t> &lengths,
                   uint32_t processors)
        : Search(static_cast<uint32_t>(lengths.size()), processors),
          lengths_(lengths), load_(processors, 0)
    {}

  protected:
    bool
    feasible(uint32_t tid, uint32_t proc) override
    {
        if (!haveIncumbent_)
            return true;
        return static_cast<double>(load_[proc] + lengths_[tid]) <
               incumbent_;
    }

    void
    place(uint32_t tid, uint32_t proc) override
    {
        load_[proc] += lengths_[tid];
    }

    void
    unplace(uint32_t tid, uint32_t proc) override
    {
        load_[proc] -= lengths_[tid];
    }

    bool
    complete(double &value) override
    {
        uint64_t peak = *std::max_element(load_.begin(), load_.end());
        value = static_cast<double>(peak);
        return true;
    }

    bool
    better(double value, double incumbent) const override
    {
        return value < incumbent;
    }

    void
    onIncumbent(double value) override
    {
        incumbent_ = value;
        haveIncumbent_ = true;
    }

  private:
    const std::vector<uint64_t> &lengths_;
    std::vector<uint64_t> load_;
    double incumbent_ = 0.0;
    bool haveIncumbent_ = false;
};

/** Maximum intra-cluster sharing under thread balance. */
class SharingSearch : public Search
{
  public:
    SharingSearch(const stats::PairMatrix &sharing, uint32_t processors)
        : Search(static_cast<uint32_t>(sharing.size()), processors),
          sharing_(sharing), count_(processors, 0),
          captured_(processors, 0.0)
    {
        ceil_ = static_cast<uint32_t>(
            util::divCeil(threads_, processors));
        floor_ = threads_ / processors;
        numCeil_ = threads_ % processors;
    }

  protected:
    bool
    feasible(uint32_t tid, uint32_t proc) override
    {
        (void)tid;
        return count_[proc] < ceil_;
    }

    void
    place(uint32_t tid, uint32_t proc) override
    {
        double gain = 0.0;
        for (uint32_t other = 0; other < tid; ++other)
            if (assign_[other] == proc)
                gain += sharing_.get(other, tid);
        captured_[proc] += gain;
        total_ += gain;
        ++count_[proc];
    }

    void
    unplace(uint32_t tid, uint32_t proc) override
    {
        double gain = 0.0;
        for (uint32_t other = 0; other < tid; ++other)
            if (assign_[other] == proc)
                gain += sharing_.get(other, tid);
        captured_[proc] -= gain;
        total_ -= gain;
        --count_[proc];
    }

    bool
    complete(double &value) override
    {
        // Thread balance: exactly numCeil_ processors hold ceil_
        // threads (when t doesn't divide evenly), the rest floor_.
        uint32_t ceilBins = 0;
        for (uint32_t c : count_) {
            if (threads_ >= processors_) {
                if (c != floor_ && c != ceil_)
                    return false;
                if (c == ceil_ && floor_ != ceil_)
                    ++ceilBins;
            } else if (c > 1) {
                return false;
            }
        }
        if (threads_ >= processors_ && floor_ != ceil_ &&
            ceilBins != numCeil_) {
            return false;
        }
        value = total_;
        return true;
    }

    bool
    better(double value, double incumbent) const override
    {
        return value > incumbent;
    }

  private:
    const stats::PairMatrix &sharing_;
    std::vector<uint32_t> count_;
    std::vector<double> captured_;
    double total_ = 0.0;
    uint32_t ceil_ = 1, floor_ = 1, numCeil_ = 0;
};

} // namespace

OptimalResult
optimalMakespan(const std::vector<uint64_t> &threadLength,
                uint32_t processors)
{
    util::fatalIf(processors == 0, "need >= 1 processor");
    util::fatalIf(threadLength.size() > maxOracleThreads,
                  "makespan oracle limited to small thread counts");
    util::fatalIf(threadLength.empty(), "no threads to place");
    MakespanSearch search(threadLength, processors);
    return search.run();
}

OptimalResult
optimalSharingCapture(const stats::PairMatrix &sharing,
                      uint32_t processors)
{
    util::fatalIf(processors == 0, "need >= 1 processor");
    util::fatalIf(sharing.size() > maxOracleThreads,
                  "sharing oracle limited to small thread counts");
    util::fatalIf(sharing.size() == 0, "no threads to place");
    SharingSearch search(sharing, processors);
    return search.run();
}

} // namespace tsp::placement
