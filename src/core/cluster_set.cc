#include "core/cluster_set.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace tsp::placement {

ClusterSet::ClusterSet(uint32_t threads) : threads_(threads)
{
    util::fatalIf(threads == 0, "cluster set needs >= 1 thread");
    clusters_.resize(threads);
    for (uint32_t t = 0; t < threads; ++t)
        clusters_[t] = {t};
}

void
ClusterSet::merge(size_t a, size_t b)
{
    util::panicIf(a == b || a >= clusters_.size() || b >= clusters_.size(),
                  "invalid cluster merge");
    if (a > b)
        std::swap(a, b);
    undoStack_.push_back({a, b, clusters_[a].size()});
    auto &dst = clusters_[a];
    auto &src = clusters_[b];
    dst.insert(dst.end(), src.begin(), src.end());
    clusters_.erase(clusters_.begin() +
                    static_cast<std::ptrdiff_t>(b));
}

bool
ClusterSet::undo()
{
    if (undoStack_.empty())
        return false;
    MergeRecord rec = undoStack_.back();
    undoStack_.pop_back();
    auto &dst = clusters_[rec.dst];
    std::vector<uint32_t> src(dst.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      rec.dstPrevSize),
                              dst.end());
    dst.resize(rec.dstPrevSize);
    clusters_.insert(clusters_.begin() +
                         static_cast<std::ptrdiff_t>(rec.srcIndex),
                     std::move(src));
    return true;
}

std::pair<uint32_t, uint32_t>
ClusterSet::lastMergePair() const
{
    util::panicIf(undoStack_.empty(), "no merge to identify");
    const MergeRecord &rec = undoStack_.back();
    const auto &dst = clusters_[rec.dst];
    uint32_t ma = *std::min_element(
        dst.begin(),
        dst.begin() + static_cast<std::ptrdiff_t>(rec.dstPrevSize));
    uint32_t mb = *std::min_element(
        dst.begin() + static_cast<std::ptrdiff_t>(rec.dstPrevSize),
        dst.end());
    if (ma > mb)
        std::swap(ma, mb);
    return {ma, mb};
}

PlacementMap
ClusterSet::toPlacement(uint32_t processors) const
{
    util::fatalIf(clusters_.size() > processors,
                  "more clusters than processors; clustering incomplete");
    std::vector<uint32_t> procOf(threads_, 0);
    for (size_t c = 0; c < clusters_.size(); ++c)
        for (uint32_t tid : clusters_[c])
            procOf[tid] = static_cast<uint32_t>(c);
    return PlacementMap(processors, std::move(procOf));
}

} // namespace tsp::placement
