#include "core/placement_map.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace tsp::placement {

PlacementMap::PlacementMap(uint32_t processors,
                           std::vector<uint32_t> procOf)
    : processors_(processors), procOf_(std::move(procOf))
{
    util::fatalIf(processors_ == 0, "placement needs >= 1 processor");
    for (uint32_t p : procOf_)
        util::fatalIf(p >= processors_,
                      "placement references an out-of-range processor");
}

std::vector<std::vector<uint32_t>>
PlacementMap::clusters() const
{
    std::vector<std::vector<uint32_t>> out(processors_);
    for (uint32_t tid = 0; tid < procOf_.size(); ++tid)
        out[procOf_[tid]].push_back(tid);
    return out;
}

std::vector<uint32_t>
PlacementMap::threadsPerProcessor() const
{
    std::vector<uint32_t> counts(processors_, 0);
    for (uint32_t p : procOf_)
        ++counts[p];
    return counts;
}

bool
PlacementMap::isThreadBalanced() const
{
    if (procOf_.empty())
        return true;
    auto counts = threadsPerProcessor();
    uint32_t t = static_cast<uint32_t>(procOf_.size());
    uint32_t lo = t / processors_;
    uint32_t hi = (t + processors_ - 1) / processors_;
    // With more processors than threads, idle processors are fine.
    return std::all_of(counts.begin(), counts.end(), [&](uint32_t c) {
        return (c >= lo && c <= hi) || (t < processors_ && c <= 1);
    });
}

std::vector<uint64_t>
PlacementMap::processorLoads(
    const std::vector<uint64_t> &threadLength) const
{
    util::fatalIf(threadLength.size() != procOf_.size(),
                  "thread length vector size mismatch");
    std::vector<uint64_t> loads(processors_, 0);
    for (uint32_t tid = 0; tid < procOf_.size(); ++tid)
        loads[procOf_[tid]] += threadLength[tid];
    return loads;
}

double
PlacementMap::loadImbalance(
    const std::vector<uint64_t> &threadLength) const
{
    auto loads = processorLoads(threadLength);
    uint64_t total = 0;
    uint64_t peak = 0;
    for (uint64_t l : loads) {
        total += l;
        peak = std::max(peak, l);
    }
    if (total == 0)
        return 1.0;
    double ideal = static_cast<double>(total) /
                   static_cast<double>(processors_);
    return static_cast<double>(peak) / ideal;
}

std::string
PlacementMap::describe() const
{
    std::ostringstream os;
    auto groups = clusters();
    for (uint32_t p = 0; p < groups.size(); ++p) {
        os << "P" << p << "{";
        for (size_t i = 0; i < groups[p].size(); ++i) {
            if (i)
                os << ',';
            os << groups[p][i];
        }
        os << "} ";
    }
    return os.str();
}

} // namespace tsp::placement
