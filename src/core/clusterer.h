/**
 * @file
 * The iterative cluster-combining engine of Section 2.1. All
 * sharing-based placement algorithms share this engine and differ only
 * in the metric (step 2) and the balance constraint applied when
 * combining (thread-balance, or load-balance for the +LB variants).
 */

#ifndef TSP_CORE_CLUSTERER_H
#define TSP_CORE_CLUSTERER_H

#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/balance.h"
#include "core/cluster_set.h"
#include "core/metrics.h"
#include "core/placement_map.h"

namespace tsp::placement {

/**
 * Greedy hierarchical clusterer with the paper's backtracking rule:
 * combine the highest-metric pair the balance constraint permits; when
 * no pair is permitted, first let the constraint relax itself (used by
 * the load-balance slack), then undo the most recent merge and forbid
 * it (Section 2.1, step 4).
 */
class GreedyClusterer
{
  public:
    /** Engine limits. */
    struct Options
    {
        /** Upper bound on undo operations before giving up. */
        size_t maxBacktracks = 10000;

        Options() {}
    };

    /**
     * @param metric     ranks candidate cluster pairs (not owned)
     * @param constraint decides merge legality; may self-relax (not owned)
     */
    GreedyClusterer(const SharingMetric &metric,
                    BalanceConstraint &constraint,
                    Options options = Options());

    /**
     * Observer invoked after every accepted merge with the partition
     * state, the merged clusters' (pre-merge) indices and the score
     * that won. Used by walkthrough tooling and tests; never affects
     * the result.
     */
    using MergeObserver = std::function<void(
        const ClusterSet &, size_t a, size_t b, MergeScore score)>;

    /** Install a merge observer (replaces any previous one). */
    void onMerge(MergeObserver observer)
    {
        observer_ = std::move(observer);
    }

    /**
     * Cluster @p threads threads into @p processors clusters and return
     * the placement. Throws FatalError if the search space is exhausted
     * (cannot happen with the thread-balance constraint).
     */
    PlacementMap run(uint32_t threads, uint32_t processors);

  private:
    const SharingMetric &metric_;
    BalanceConstraint &constraint_;
    Options options_;
    MergeObserver observer_;
};

} // namespace tsp::placement

#endif // TSP_CORE_CLUSTERER_H
