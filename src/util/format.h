/**
 * @file
 * Numeric formatting helpers for paper-style table output.
 */

#ifndef TSP_UTIL_FORMAT_H
#define TSP_UTIL_FORMAT_H

#include <cstdint>
#include <string>

namespace tsp::util {

/** Fixed-point decimal with @p prec digits after the point. */
std::string fmtFixed(double x, int prec = 2);

/** Percentage with @p prec digits, e.g. fmtPercent(0.1234) == "12.34%". */
std::string fmtPercent(double fraction, int prec = 2);

/** Integer with thousands separators, e.g. 1234567 -> "1,234,567". */
std::string fmtThousands(int64_t x);

/**
 * Compact magnitude formatting: 950 -> "950", 12'340 -> "12.3k",
 * 4'200'000 -> "4.20M". Used for trace-length style columns.
 */
std::string fmtCompact(double x);

/** Ratio formatted as a multiplier, e.g. 42.0 -> "42.0x". */
std::string fmtRatio(double x, int prec = 1);

/** Byte count with binary units, e.g. 32768 -> "32 KB". */
std::string fmtBytes(uint64_t bytes);

} // namespace tsp::util

#endif // TSP_UTIL_FORMAT_H
