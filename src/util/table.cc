#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <iostream>
#include <sstream>

#include "util/error.h"

namespace tsp::util {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    fatalIf(!header_.empty() && cells.size() != header_.size(),
            "table row width does not match header width");
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    separators_.push_back(rows_.size());
}

void
TextTable::setAlign(size_t col, Align align)
{
    forcedAlign_.emplace_back(col, align);
}

bool
TextTable::looksNumeric(size_t col) const
{
    bool sawAny = false;
    for (const auto &row : rows_) {
        if (col >= row.size() || row[col].empty())
            continue;
        sawAny = true;
        for (char c : row[col]) {
            if (!std::isdigit(static_cast<unsigned char>(c)) &&
                c != '.' && c != '-' && c != '+' && c != '%' && c != ',' &&
                c != 'x' && c != 'e' && c != 'k' && c != 'M' && c != 'G') {
                return false;
            }
        }
    }
    return sawAny;
}

std::string
TextTable::render() const
{
    size_t ncols = header_.size();
    for (const auto &row : rows_)
        ncols = std::max(ncols, row.size());
    if (ncols == 0)
        return title_.empty() ? "" : title_ + "\n";

    std::vector<size_t> width(ncols, 0);
    for (size_t c = 0; c < ncols; ++c) {
        if (c < header_.size())
            width[c] = header_[c].size();
        for (const auto &row : rows_)
            if (c < row.size())
                width[c] = std::max(width[c], row[c].size());
    }

    std::vector<Align> align(ncols, Align::Left);
    for (size_t c = 0; c < ncols; ++c)
        if (looksNumeric(c))
            align[c] = Align::Right;
    for (const auto &[col, a] : forcedAlign_)
        if (col < ncols)
            align[col] = a;

    auto pad = [&](const std::string &s, size_t c) {
        std::string padded(width[c] - std::min(width[c], s.size()), ' ');
        return align[c] == Align::Right ? padded + s : s + padded;
    };

    std::ostringstream os;
    size_t total = 0;
    for (size_t c = 0; c < ncols; ++c)
        total += width[c] + (c ? 3 : 0);

    if (!title_.empty())
        os << title_ << '\n';

    auto rule = [&]() { os << std::string(total, '-') << '\n'; };

    if (!header_.empty()) {
        for (size_t c = 0; c < ncols; ++c) {
            if (c)
                os << " | ";
            os << pad(c < header_.size() ? header_[c] : "", c);
        }
        os << '\n';
        rule();
    }

    for (size_t r = 0; r < rows_.size(); ++r) {
        if (std::find(separators_.begin(), separators_.end(), r) !=
            separators_.end()) {
            rule();
        }
        for (size_t c = 0; c < ncols; ++c) {
            if (c)
                os << " | ";
            os << pad(c < rows_[r].size() ? rows_[r][c] : "", c);
        }
        os << '\n';
    }
    return os.str();
}

void
TextTable::print() const
{
    std::cout << render();
}

} // namespace tsp::util
