/**
 * @file
 * A fixed-size worker pool with a futures-based submit/parallelFor
 * API, used to fan independent simulation runs across cores.
 *
 * Design points:
 *  - `workers == 0` degenerates to fully inline execution on the
 *    calling thread (no threads are created), so callers can treat
 *    "serial" as just another pool width;
 *  - tasks may not block on futures of tasks submitted to the *same*
 *    pool (no work-stealing; a nested wait can deadlock). The
 *    experiment layer never nests pools;
 *  - exceptions thrown by tasks propagate: through the future for
 *    submit(), and out of parallelFor() (the exception of the
 *    lowest-index failing iteration, deterministically).
 *
 * The default pool width is `TSP_JOBS` when set, else the hardware
 * concurrency; `setDefaultJobs` lets CLI `--jobs` flags override both.
 */

#ifndef TSP_UTIL_THREAD_POOL_H
#define TSP_UTIL_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <limits>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "obs/metric_defs.h"

namespace tsp::util {

/** Fixed-size worker pool. Threads start in the constructor and join
 *  in the destructor; the task queue is unbounded. */
class ThreadPool
{
  public:
    /** @param workers worker threads; 0 = run every task inline. */
    explicit ThreadPool(unsigned workers = defaultJobs());

    /** Drains nothing: joins after finishing already-queued tasks. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (0 = inline mode). */
    unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

    /**
     * Schedule @p fn and return a future for its result. In inline
     * mode the task runs before submit returns (the future is ready).
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        // The fault point lives inside the packaged task so an
        // injected dispatch failure is captured by the future like
        // any user exception, instead of escaping a worker thread.
        auto task = std::make_shared<std::packaged_task<R()>>(
            [fn = std::forward<F>(fn)]() mutable -> R {
                TSP_FAULT_POINT("pool.dispatch");
                return fn();
            });
        std::future<R> future = task->get_future();
        if (threads_.empty()) {
            (*task)();
            obs::poolTasksExecuted().inc();
            return future;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        obs::poolQueueDepth().add(1);
        cv_.notify_one();
        return future;
    }

    /**
     * Run @p fn(i) for every i in [0, @p n), blocking until all
     * iterations finish. Iterations are distributed dynamically over
     * the workers (plus the calling thread). If any iteration throws,
     * the exception of the lowest-index failing iteration is
     * rethrown after all iterations have run. An exception escaping
     * shard dispatch itself (e.g. an injected pool.dispatch fault)
     * propagates only after every shard has been joined, and only if
     * no iteration failed.
     */
    template <typename F>
    void
    parallelFor(size_t n, F &&fn)
    {
        if (n == 0)
            return;
        if (threads_.empty() || n == 1) {
            // Same semantics as the pooled path: every iteration
            // runs; the lowest-index exception is rethrown after.
            std::exception_ptr error;
            for (size_t i = 0; i < n; ++i) {
                try {
                    fn(i);
                } catch (...) {
                    if (!error)
                        error = std::current_exception();
                }
            }
            if (error)
                std::rethrow_exception(error);
            return;
        }

        std::atomic<size_t> next{0};
        std::mutex errMutex;
        size_t errIndex = std::numeric_limits<size_t>::max();
        std::exception_ptr error;

        auto shard = [&] {
            for (size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1)) {
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errMutex);
                    if (i < errIndex) {
                        errIndex = i;
                        error = std::current_exception();
                    }
                }
            }
        };

        size_t shards = std::min<size_t>(workers(), n);
        std::vector<std::future<void>> pending;
        pending.reserve(shards);
        for (size_t s = 0; s < shards; ++s)
            pending.push_back(submit(shard));
        // The calling thread works too instead of idling on the gets.
        shard();
        // Join EVERY shard before propagating anything: a future that
        // throws (e.g. an injected pool.dispatch fault) must not
        // unwind next/errMutex/error/shard while later shard tasks
        // are still running against them. Iteration errors keep their
        // deterministic lowest-index priority; a dispatch-level error
        // is only rethrown when no iteration failed.
        std::exception_ptr dispatchError;
        for (auto &f : pending) {
            try {
                f.get();
            } catch (...) {
                if (!dispatchError)
                    dispatchError = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
        if (dispatchError)
            std::rethrow_exception(dispatchError);
    }

    /**
     * The default pool width: the last setDefaultJobs() override if
     * any, else the TSP_JOBS environment variable if it parses to a
     * positive integer, else std::thread::hardware_concurrency()
     * (minimum 1).
     */
    static unsigned defaultJobs();

    /** Override defaultJobs() (0 clears the override). */
    static void setDefaultJobs(unsigned jobs);

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace tsp::util

#endif // TSP_UTIL_THREAD_POOL_H
