/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in the library (workload generators, the
 * RANDOM placement algorithm, partition sampling) draws from an explicit
 * Rng instance so that experiments are reproducible bit-for-bit from a
 * seed. The core generator is xoshiro256**, seeded via SplitMix64, which
 * is fast, high quality and trivially portable.
 */

#ifndef TSP_UTIL_RNG_H
#define TSP_UTIL_RNG_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tsp::util {

/** SplitMix64 step; used to expand a single seed into generator state. */
uint64_t splitmix64(uint64_t &state);

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be used
 * with <random> and <algorithm> facilities.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed (any value, including 0, is fine). */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    uint64_t operator()() { return next(); }

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform real in [0, 1). */
    double uniform01();

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Bernoulli trial with probability @p p of true. */
    bool bernoulli(double p);

    /** Standard normal deviate (Box–Muller, cached pair). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal deviate parameterized directly by the desired mean and
     * standard deviation of the *resulting* distribution (not of the
     * underlying normal). Useful for skewed thread-length distributions
     * whose coefficient of variation exceeds what a truncated normal can
     * express. Requires mean > 0.
     */
    double lognormalMeanDev(double mean, double stddev);

    /** Zipf-distributed integer in [0, n) with exponent @p s (s >= 0). */
    uint64_t zipf(uint64_t n, double s);

    /** Fisher–Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i)
            std::swap(v[i - 1], v[nextBelow(i)]);
    }

    /** Pick a uniformly random element index of a non-empty container. */
    template <typename T>
    size_t
    pickIndex(const std::vector<T> &v)
    {
        return static_cast<size_t>(nextBelow(v.size()));
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng fork();

  private:
    uint64_t s_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace tsp::util

#endif // TSP_UTIL_RNG_H
