#include "util/rng.h"

#include <cmath>

#include "util/error.h"

namespace tsp::util {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    panicIf(bound == 0, "Rng::nextBelow bound must be positive");
    // Lemire's nearly-divisionless rejection method.
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
        uint64_t threshold = -bound % bound;
        while (l < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    panicIf(lo > hi, "Rng::uniformInt requires lo <= hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBelow(span));
}

double
Rng::uniform01()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniform01();
}

bool
Rng::bernoulli(double p)
{
    return uniform01() < p;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform01();
    } while (u1 <= 0.0);
    u2 = uniform01();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormalMeanDev(double mean, double stddev)
{
    panicIf(mean <= 0.0, "lognormalMeanDev requires positive mean");
    if (stddev <= 0.0)
        return mean;
    // Solve for the underlying normal parameters mu/sigma such that the
    // lognormal has the requested mean and standard deviation.
    double cv2 = (stddev / mean) * (stddev / mean);
    double sigma2 = std::log1p(cv2);
    double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(normal(mu, std::sqrt(sigma2)));
}

uint64_t
Rng::zipf(uint64_t n, double s)
{
    panicIf(n == 0, "Rng::zipf requires n > 0");
    if (s <= 0.0)
        return nextBelow(n);
    // Inverse-CDF by rejection over the continuous bounding distribution
    // (Devroye). Exact enough for workload-locality purposes and O(1).
    const double q = 1.0 - s;
    auto h = [&](double x) {
        return q == 0.0 ? std::log(x) : (std::pow(x, q) - 1.0) / q;
    };
    auto hInv = [&](double y) {
        return q == 0.0 ? std::exp(y) : std::pow(1.0 + q * y, 1.0 / q);
    };
    const double hx0 = h(0.5) - 1.0;
    const double hn = h(static_cast<double>(n) + 0.5);
    while (true) {
        double u = hx0 + uniform01() * (hn - hx0);
        double x = hInv(u);
        uint64_t k = static_cast<uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n)
            k = n;
        double kd = static_cast<double>(k);
        if (u >= h(kd + 0.5) - std::pow(kd, -s))
            return k - 1;
    }
}

Rng
Rng::fork()
{
    uint64_t seed = next() ^ 0xD1B54A32D192ED03ull;
    return Rng(seed);
}

} // namespace tsp::util
