/**
 * @file
 * Open-addressing hash table for the simulator's hot per-reference
 * state (directory entries, cache departure history).
 *
 * Why not std::unordered_map: the standard container is node-based —
 * every insert heap-allocates, every lookup chases a bucket pointer to
 * a scattered node, and a trace-scale simulation does both millions of
 * times per run. FlatMap stores its slots in one contiguous array
 * (power-of-two capacity, linear probing), so a lookup is a mixed hash
 * plus a short sequential scan, and a pre-reserved map never allocates
 * again — the property the simulate-loop allocation test pins.
 *
 * Design:
 *  - linear probing over a single slot array; occupancy in a parallel
 *    byte array so probing touches hot, densely packed metadata;
 *  - multiplicative (splitmix64-style) hash mixing, so sequential
 *    block addresses — the common trace pattern — spread uniformly;
 *  - erase by backward shifting (no tombstones): probe chains stay
 *    minimal no matter the insert/erase history;
 *  - growth doubles capacity at 7/8 load; reserve() sizes the table so
 *    the planned insert count never triggers a rehash.
 *
 * Not thread-safe; the simulator owns one per cache/directory.
 */

#ifndef TSP_UTIL_FLAT_MAP_H
#define TSP_UTIL_FLAT_MAP_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tsp::util {

/** Default FlatMap hash: splitmix64 finalizer over the key's bits. */
struct FlatHash
{
    uint64_t
    operator()(uint64_t x) const
    {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return x;
    }
};

/**
 * Open-addressing hash map from an integral key to V. See the file
 * comment for the design; the API mirrors the std::unordered_map
 * subset the simulator uses (find / tryEmplace / erase / iteration).
 */
template <typename K, typename V, typename Hash = FlatHash>
class FlatMap
{
  public:
    /** One storage slot; valid only where occupied. */
    struct Slot
    {
        K key;
        V value;
    };

    FlatMap() = default;

    /**
     * Ensure capacity for @p n entries without rehashing: after
     * reserve(n), up to n entries insert allocation-free.
     */
    void
    reserve(size_t n)
    {
        size_t needed = slotsFor(n);
        if (needed > slots_.size())
            rehash(needed);
    }

    /** Number of entries. */
    size_t size() const { return size_; }

    /** True when no entries are present. */
    bool empty() const { return size_ == 0; }

    /** Current slot-array capacity (entries fit up to 7/8 of this). */
    size_t capacity() const { return slots_.size(); }

    /** Pointer to @p key's value, or nullptr when absent. */
    V *
    find(const K &key)
    {
        if (size_ == 0)
            return nullptr;
        size_t i = Hash{}(key)&mask_;
        while (used_[i]) {
            if (slots_[i].key == key)
                return &slots_[i].value;
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    /** Const lookup. */
    const V *
    find(const K &key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    /**
     * Find @p key or insert it with a value-initialized V. Returns the
     * value pointer and whether an insert happened (the try_emplace
     * contract). The pointer is invalidated by any later insert that
     * grows the table — don't hold it across mutations.
     */
    std::pair<V *, bool>
    tryEmplace(const K &key)
    {
        if (needsGrowth())
            rehash(slots_.empty() ? kMinSlots : slots_.size() * 2);
        size_t i = Hash{}(key)&mask_;
        while (used_[i]) {
            if (slots_[i].key == key)
                return {&slots_[i].value, false};
            i = (i + 1) & mask_;
        }
        used_[i] = 1;
        slots_[i].key = key;
        slots_[i].value = V{};
        ++size_;
        return {&slots_[i].value, true};
    }

    /**
     * Erase @p key; returns whether it was present. Uses backward
     * shifting, so no tombstones accumulate: every slot in the probe
     * chain after the hole is examined and moved back when its home
     * position lies at or before the hole.
     */
    bool
    erase(const K &key)
    {
        if (size_ == 0)
            return false;
        size_t i = Hash{}(key)&mask_;
        while (used_[i]) {
            if (slots_[i].key == key) {
                shiftBack(i);
                --size_;
                return true;
            }
            i = (i + 1) & mask_;
        }
        return false;
    }

    /** Drop every entry; capacity is retained. */
    void
    clear()
    {
        std::fill(used_.begin(), used_.end(), uint8_t{0});
        size_ = 0;
    }

    /** Visit every (key, value) pair, in unspecified order. */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (size_t i = 0; i < slots_.size(); ++i)
            if (used_[i])
                fn(slots_[i].key, slots_[i].value);
    }

    /** Const iterator over occupied slots, in unspecified order. */
    class const_iterator
    {
      public:
        const_iterator(const FlatMap *map, size_t pos)
            : map_(map), pos_(pos)
        {
            skipEmpty();
        }

        const Slot &operator*() const { return map_->slots_[pos_]; }
        const Slot *operator->() const { return &map_->slots_[pos_]; }

        const_iterator &
        operator++()
        {
            ++pos_;
            skipEmpty();
            return *this;
        }

        bool
        operator==(const const_iterator &o) const
        {
            return pos_ == o.pos_;
        }

      private:
        void
        skipEmpty()
        {
            while (pos_ < map_->slots_.size() && !map_->used_[pos_])
                ++pos_;
        }

        const FlatMap *map_;
        size_t pos_;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, slots_.size()}; }

  private:
    static constexpr size_t kMinSlots = 16;

    /** Smallest power-of-two slot count keeping n entries <= 7/8 load. */
    static size_t
    slotsFor(size_t n)
    {
        size_t target = n + n / 7 + 1;  // ceil(n / (7/8))
        return std::max(kMinSlots, std::bit_ceil(target));
    }

    bool
    needsGrowth() const
    {
        // Grow at 7/8 occupancy (and on first insert).
        return (size_ + 1) * 8 > slots_.size() * 7;
    }

    void
    rehash(size_t newSlots)
    {
        std::vector<Slot> oldSlots = std::move(slots_);
        std::vector<uint8_t> oldUsed = std::move(used_);
        slots_.assign(newSlots, Slot{});
        used_.assign(newSlots, 0);
        mask_ = newSlots - 1;
        for (size_t i = 0; i < oldSlots.size(); ++i) {
            if (!oldUsed[i])
                continue;
            size_t j = Hash{}(oldSlots[i].key) & mask_;
            while (used_[j])
                j = (j + 1) & mask_;
            used_[j] = 1;
            slots_[j] = std::move(oldSlots[i]);
        }
    }

    /** Backward-shift deletion starting from hole @p hole. */
    void
    shiftBack(size_t hole)
    {
        size_t i = hole;
        size_t j = i;
        for (;;) {
            j = (j + 1) & mask_;
            if (!used_[j])
                break;
            size_t home = Hash{}(slots_[j].key) & mask_;
            // j may fill the hole at i only if its home position does
            // not lie cyclically inside (i, j] — otherwise moving it
            // would break its own probe chain.
            if (((j - home) & mask_) >= ((j - i) & mask_)) {
                slots_[i] = std::move(slots_[j]);
                i = j;
            }
        }
        used_[i] = 0;
    }

    std::vector<Slot> slots_;
    std::vector<uint8_t> used_;
    size_t size_ = 0;
    size_t mask_ = 0;
};

} // namespace tsp::util

#endif // TSP_UTIL_FLAT_MAP_H
