/**
 * @file
 * Minimal leveled logger used across the library.
 *
 * Severity levels follow the gem5 status-message taxonomy: inform() for
 * normal progress, warn() for suspicious-but-survivable conditions, and
 * debug() for developer detail. Fatal conditions throw (see error.h)
 * rather than being logged.
 */

#ifndef TSP_UTIL_LOGGING_H
#define TSP_UTIL_LOGGING_H

#include <sstream>
#include <string>

namespace tsp::util {

/** Message severity, ordered from most to least verbose. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Silent = 3 };

/**
 * Process-wide logger. All output goes to stderr so that benchmark and
 * example binaries can keep stdout clean for table output.
 */
class Logger
{
  public:
    /** Return the process-wide logger instance. */
    static Logger &instance();

    /** Set the minimum severity that will be emitted. */
    void setLevel(LogLevel level) { level_ = level; }

    /** Current minimum severity. */
    LogLevel level() const { return level_; }

    /** Emit a message at @p level if it passes the severity filter. */
    void log(LogLevel level, const std::string &msg);

  private:
    Logger() = default;

    LogLevel level_ = LogLevel::Warn;
};

/** Emit an informational message. */
void inform(const std::string &msg);

/** Emit a warning message. */
void warn(const std::string &msg);

/** Emit a developer-debug message. */
void debug(const std::string &msg);

/** Stream-style message construction helper. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace tsp::util

#endif // TSP_UTIL_LOGGING_H
