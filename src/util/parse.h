/**
 * @file
 * Strict numeric parsing for CLI flags. The strtoul-based parsing the
 * tools used previously silently coerced garbage ("8x" -> 8, "-1" ->
 * huge, overflow -> clamp); these helpers reject non-numeric,
 * negative and overflowing input with a FatalError naming the flag.
 */

#ifndef TSP_UTIL_PARSE_H
#define TSP_UTIL_PARSE_H

#include <cstdint>
#include <string>

namespace tsp::util {

/**
 * Parse @p text as an unsigned decimal integer in [@p min, @p max].
 * The whole string must be digits (no sign, no suffix, no blanks).
 * Throws FatalError naming @p what (e.g. "--jobs") on any violation.
 */
uint64_t parseUnsigned(const std::string &text, const std::string &what,
                       uint64_t min = 0,
                       uint64_t max = UINT64_MAX);

/** parseUnsigned narrowed to uint32_t. */
uint32_t parseUnsigned32(const std::string &text,
                         const std::string &what, uint32_t min = 0,
                         uint32_t max = UINT32_MAX);

} // namespace tsp::util

#endif // TSP_UTIL_PARSE_H
