#include "util/thread_pool.h"

#include <cstdlib>
#include <string>

#include "obs/timer.h"

namespace tsp::util {

namespace {

/** Programmatic override of defaultJobs(); 0 = unset. */
std::atomic<unsigned> defaultJobsOverride{0};

unsigned
jobsFromEnvironment()
{
    if (const char *env = std::getenv("TSP_JOBS")) {
        char *end = nullptr;
        unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0 &&
            parsed <= 1024) {
            return static_cast<unsigned>(parsed);
        }
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

ThreadPool::ThreadPool(unsigned workers)
{
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::workerLoop()
{
    // Utilization accounting (worker_idle_us / worker_busy_us) reads
    // the clock only while metrics are enabled, so the disabled path
    // stays exactly the pre-observability loop.
    for (;;) {
        std::function<void()> task;
        {
            obs::StopWatch idle;
            bool timeIdle = obs::metricsEnabled();
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (timeIdle)
                obs::poolWorkerIdleMicros().add(idle.elapsedUs());
            if (queue_.empty())
                return;  // stop_ set and nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        obs::poolQueueDepth().add(-1);
        if (obs::metricsEnabled()) {
            obs::StopWatch busy;
            task();  // packaged_task captures any exception
            obs::poolWorkerBusyMicros().add(busy.elapsedUs());
        } else {
            task();
        }
        obs::poolTasksExecuted().inc();
    }
}

unsigned
ThreadPool::defaultJobs()
{
    unsigned override = defaultJobsOverride.load();
    if (override > 0)
        return override;
    return jobsFromEnvironment();
}

void
ThreadPool::setDefaultJobs(unsigned jobs)
{
    defaultJobsOverride.store(jobs);
}

} // namespace tsp::util
