#include "util/parse.h"

#include <cctype>
#include <charconv>

#include "util/error.h"
#include "util/logging.h"

namespace tsp::util {

uint64_t
parseUnsigned(const std::string &text, const std::string &what,
              uint64_t min, uint64_t max)
{
    fatalIf(text.empty(), what + " needs a numeric value");
    for (char c : text) {
        fatalIf(!std::isdigit(static_cast<unsigned char>(c)),
                concat(what, ": invalid numeric value '", text, "'",
                       text[0] == '-' ? " (must be non-negative)"
                                      : ""));
    }
    uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(
        text.data(), text.data() + text.size(), value, 10);
    fatalIf(ec == std::errc::result_out_of_range ||
                value > max,
            concat(what, ": value '", text, "' is too large (max ",
                   max, ")"));
    fatalIf(ec != std::errc() || ptr != text.data() + text.size(),
            concat(what, ": invalid numeric value '", text, "'"));
    fatalIf(value < min,
            concat(what, ": value ", value, " is too small (min ",
                   min, ")"));
    return value;
}

uint32_t
parseUnsigned32(const std::string &text, const std::string &what,
                uint32_t min, uint32_t max)
{
    return static_cast<uint32_t>(
        parseUnsigned(text, what, min, max));
}

} // namespace tsp::util
