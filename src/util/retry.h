/**
 * @file
 * Bounded retry with capped exponential backoff, for transient
 * filesystem failures on the robustness paths (checkpoint journal
 * appends, trace file IO). Deliberately small: a policy struct and one
 * function template.
 *
 * PanicError is never retried — an internal invariant violation will
 * not heal by waiting — and the last attempt's exception propagates
 * unchanged so callers keep the original error type and message.
 */

#ifndef TSP_UTIL_RETRY_H
#define TSP_UTIL_RETRY_H

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "util/error.h"
#include "util/logging.h"

namespace tsp::util {

/** Backoff schedule for retry(). */
struct RetryPolicy
{
    /** Total attempts, including the first (>= 1). */
    unsigned maxAttempts = 3;

    /** Delay before the second attempt. */
    std::chrono::milliseconds initialBackoff{10};

    /** Backoff growth factor between attempts. */
    double multiplier = 2.0;

    /** Backoff ceiling. */
    std::chrono::milliseconds maxBackoff{1000};
};

/**
 * Invoke @p fn, retrying on any std::exception except PanicError per
 * @p policy. Each failed attempt logs a warning naming @p what; the
 * final failure rethrows the original exception.
 */
template <typename F>
auto
retry(F &&fn, const RetryPolicy &policy, const std::string &what)
    -> decltype(fn())
{
    panicIf(policy.maxAttempts == 0, "retry policy needs >= 1 attempt");
    std::chrono::milliseconds backoff = policy.initialBackoff;
    for (unsigned attempt = 1;; ++attempt) {
        try {
            return fn();
        } catch (const PanicError &) {
            throw;  // a bug, not a transient condition
        } catch (const std::exception &e) {
            if (attempt >= policy.maxAttempts)
                throw;
            warn(concat(what, " failed (attempt ", attempt, "/",
                        policy.maxAttempts, "): ", e.what(),
                        "; retrying in ", backoff.count(), " ms"));
            std::this_thread::sleep_for(backoff);
            auto next = std::chrono::milliseconds(
                static_cast<long long>(
                    static_cast<double>(backoff.count()) *
                    policy.multiplier));
            backoff = next < policy.maxBackoff ? next
                                               : policy.maxBackoff;
        }
    }
}

} // namespace tsp::util

#endif // TSP_UTIL_RETRY_H
