/**
 * @file
 * Bounded retry with capped exponential backoff, for transient
 * filesystem failures on the robustness paths (checkpoint journal
 * appends, trace file IO). Deliberately small: a policy struct, a
 * backoff schedule, and one function template.
 *
 * With a non-zero jitterSeed the schedule applies *decorrelated
 * jitter* (each delay drawn uniformly from [initialBackoff,
 * 3 x previous delay], capped), so pool threads that hit the same
 * transient filesystem failure do not retry in lockstep and re-collide
 * on every attempt. The jitter RNG is seeded from the policy alone —
 * the delay sequence is a pure function of the seed, so tests stay
 * exactly reproducible.
 *
 * PanicError is never retried — an internal invariant violation will
 * not heal by waiting — and the last attempt's exception propagates
 * unchanged so callers keep the original error type and message.
 */

#ifndef TSP_UTIL_RETRY_H
#define TSP_UTIL_RETRY_H

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "util/error.h"
#include "util/logging.h"

namespace tsp::util {

/** Backoff schedule for retry(). */
struct RetryPolicy
{
    /** Total attempts, including the first (>= 1). */
    unsigned maxAttempts = 3;

    /** Delay before the second attempt. */
    std::chrono::milliseconds initialBackoff{10};

    /** Backoff growth factor between attempts (jitter off). */
    double multiplier = 2.0;

    /** Backoff ceiling. */
    std::chrono::milliseconds maxBackoff{1000};

    /**
     * Seed of the deterministic decorrelated jitter; 0 disables
     * jitter (plain capped exponential backoff). Call sites that can
     * retry concurrently (one pool thread per app/cell) should derive
     * the seed from their identity — e.g. a hash of the target path —
     * so contending threads spread out instead of thundering back in
     * step.
     */
    uint64_t jitterSeed = 0;
};

/**
 * The delay sequence retry() sleeps between attempts: capped
 * exponential when the policy's jitterSeed is 0, decorrelated jitter
 * otherwise. Exposed as its own class so tests can pin determinism
 * and bounds without timing real sleeps.
 */
class BackoffSchedule
{
  public:
    explicit BackoffSchedule(const RetryPolicy &policy)
        : policy_(policy), state_(policy.jitterSeed),
          backoff_(policy.initialBackoff)
    {}

    /** The delay to sleep before the next attempt. */
    std::chrono::milliseconds
    next()
    {
        std::chrono::milliseconds current = backoff_;
        if (policy_.jitterSeed == 0) {
            auto grown = std::chrono::milliseconds(
                static_cast<long long>(
                    static_cast<double>(backoff_.count()) *
                    policy_.multiplier));
            backoff_ = std::min(grown, policy_.maxBackoff);
            return current;
        }
        // Decorrelated jitter: next in [initial, 3 x previous], capped.
        // splitmix64 is deterministic per seed and cheap.
        long long lo = policy_.initialBackoff.count();
        long long hi =
            std::max<long long>(lo, 3 * current.count());
        long long span = hi - lo + 1;
        long long drawn =
            lo + static_cast<long long>(nextRandom() %
                                        static_cast<uint64_t>(span));
        backoff_ = std::min(std::chrono::milliseconds(drawn),
                            policy_.maxBackoff);
        return std::min(current, policy_.maxBackoff);
    }

  private:
    uint64_t
    nextRandom()
    {
        // splitmix64 (public-domain constants).
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    RetryPolicy policy_;
    uint64_t state_;
    std::chrono::milliseconds backoff_;
};

/**
 * Invoke @p fn, retrying on any std::exception except PanicError per
 * @p policy. Each failed attempt logs a warning naming @p what; the
 * final failure rethrows the original exception.
 */
template <typename F>
auto
retry(F &&fn, const RetryPolicy &policy, const std::string &what)
    -> decltype(fn())
{
    panicIf(policy.maxAttempts == 0, "retry policy needs >= 1 attempt");
    BackoffSchedule schedule(policy);
    for (unsigned attempt = 1;; ++attempt) {
        try {
            return fn();
        } catch (const PanicError &) {
            throw;  // a bug, not a transient condition
        } catch (const std::exception &e) {
            if (attempt >= policy.maxAttempts)
                throw;
            std::chrono::milliseconds backoff = schedule.next();
            warn(concat(what, " failed (attempt ", attempt, "/",
                        policy.maxAttempts, "): ", e.what(),
                        "; retrying in ", backoff.count(), " ms"));
            std::this_thread::sleep_for(backoff);
        }
    }
}

/**
 * A RetryPolicy whose jitter seed is derived from @p identity (e.g.
 * the file path being written), so distinct targets back off on
 * distinct, reproducible schedules.
 */
inline RetryPolicy
jitteredRetryPolicy(const std::string &identity)
{
    RetryPolicy policy;
    // FNV-1a over the identity; never 0 (0 would disable jitter).
    uint64_t hash = 1469598103934665603ull;
    for (unsigned char c : identity)
        hash = (hash ^ c) * 1099511628211ull;
    policy.jitterSeed = hash ? hash : 1;
    return policy;
}

} // namespace tsp::util

#endif // TSP_UTIL_RETRY_H
