#include "util/watchdog.h"

#include "obs/metric_defs.h"
#include "util/logging.h"

namespace tsp::util {

Watchdog::Watchdog(std::chrono::milliseconds deadline,
                   Callback onOverdue,
                   std::chrono::milliseconds pollInterval)
    : deadline_(deadline), poll_(pollInterval),
      callback_(std::move(onOverdue))
{
    if (!callback_) {
        callback_ = [](const std::string &label,
                       std::chrono::milliseconds elapsed) {
            warn(concat("[watchdog] job '", label,
                        "' exceeded its deadline (running ",
                        elapsed.count(), " ms)"));
        };
    }
    thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

Watchdog::Guard::~Guard()
{
    if (dog_)
        dog_->unwatch(id_);
}

Watchdog::Guard
Watchdog::watch(std::string label)
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t id = nextId_++;
    tasks_[id] = Task{std::move(label), Clock::now(), false};
    return Guard(this, id);
}

void
Watchdog::cancelOnOverdue(CancelToken *token)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cancelOnOverdue_ = token;
}

void
Watchdog::unwatch(uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.erase(id);
}

uint64_t
Watchdog::overdueCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return overdue_.size();
}

std::vector<std::string>
Watchdog::overdueLabels() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return overdue_;
}

void
Watchdog::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
        cv_.wait_for(lock, poll_, [this] { return stop_; });
        if (stop_)
            break;
        auto now = Clock::now();
        // Collect under the lock, fire callbacks outside it: the
        // callback may log or block, and a concurrently-dying Guard
        // must be able to unregister meanwhile.
        std::vector<
            std::pair<std::string, std::chrono::milliseconds>>
            fire;
        for (auto &[id, task] : tasks_) {
            if (task.flagged)
                continue;
            auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    now - task.start);
            if (elapsed < deadline_)
                continue;
            task.flagged = true;
            overdue_.push_back(task.label);
            fire.emplace_back(task.label, elapsed);
            obs::watchdogDeadlineFires().inc();
            if (cancelOnOverdue_)
                cancelOnOverdue_->requestCancel();
        }
        if (!fire.empty()) {
            lock.unlock();
            for (const auto &[label, elapsed] : fire)
                callback_(label, elapsed);
            lock.lock();
        }
    }
}

} // namespace tsp::util
