/**
 * @file
 * Small bit-manipulation helpers used by the cache and address-space
 * machinery.
 */

#ifndef TSP_UTIL_BITS_H
#define TSP_UTIL_BITS_H

#include <bit>
#include <cstdint>

#include "util/error.h"

namespace tsp::util {

/** True when @p x is a (positive) power of two. */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)); requires x > 0. */
constexpr unsigned
log2Floor(uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** ceil(log2(x)); requires x > 0. */
constexpr unsigned
log2Ceil(uint64_t x)
{
    return x <= 1 ? 0u : log2Floor(x - 1) + 1;
}

/** Round @p x down to a multiple of power-of-two @p align. */
constexpr uint64_t
alignDown(uint64_t x, uint64_t align)
{
    return x & ~(align - 1);
}

/** Round @p x up to a multiple of power-of-two @p align. */
constexpr uint64_t
alignUp(uint64_t x, uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

/** Integer ceiling division. */
constexpr uint64_t
divCeil(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace tsp::util

#endif // TSP_UTIL_BITS_H
