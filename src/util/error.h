/**
 * @file
 * Error types for the thread-sharing-placement library.
 *
 * Following the gem5 convention, we distinguish two failure classes:
 *  - FatalError: the caller supplied an invalid configuration or input
 *    (user error, recoverable by fixing the input);
 *  - PanicError: an internal invariant was violated (a library bug).
 *
 * Unlike gem5, both are thrown rather than aborting the process, so that
 * library users and tests can handle them.
 */

#ifndef TSP_UTIL_ERROR_H
#define TSP_UTIL_ERROR_H

#include <stdexcept>
#include <string>

namespace tsp::util {

/** Error caused by invalid user input or configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Error caused by a violated internal invariant (a library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

/** Throw a FatalError. Use for bad user input/configuration. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

/** Throw a PanicError. Use when an internal invariant is violated. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

/** Fatal-check helper: throws FatalError with @p msg unless @p cond. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

/** Panic-check helper: throws PanicError with @p msg unless @p cond. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

// String-literal overloads: the std::string& versions construct (and
// heap-allocate) the message temporary even when the condition is
// false, which the simulator hot path cannot afford — checks run per
// memory reference. These defer the std::string until the throw
// actually happens (docs/performance.md).

/** Fatal-check for literal messages: allocation-free unless thrown. */
inline void
fatalIf(bool cond, const char *msg)
{
    if (cond) [[unlikely]]
        throw FatalError(msg);
}

/** Panic-check for literal messages: allocation-free unless thrown. */
inline void
panicIf(bool cond, const char *msg)
{
    if (cond) [[unlikely]]
        throw PanicError(msg);
}

} // namespace tsp::util

#endif // TSP_UTIL_ERROR_H
