/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to
 * integrity-check on-disk artifacts: TSPT trace payloads and TSPC
 * checkpoint journal records. A checksum is not a signature — it
 * detects corruption (torn writes, bit rot, truncation), not
 * tampering, which is all the robustness layer needs.
 */

#ifndef TSP_UTIL_CHECKSUM_H
#define TSP_UTIL_CHECKSUM_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tsp::util {

/** CRC-32 of @p len bytes at @p data, chained from @p seed. */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

/** CRC-32 of a byte string. */
inline uint32_t
crc32(std::string_view bytes, uint32_t seed = 0)
{
    return crc32(bytes.data(), bytes.size(), seed);
}

} // namespace tsp::util

#endif // TSP_UTIL_CHECKSUM_H
