/**
 * @file
 * Deadline watchdog for long-running jobs. A background thread polls
 * the set of in-flight tasks and flags (once, via a callback; by
 * default a warn() line) every task that has been running longer than
 * the configured deadline. The watchdog never kills a task — the
 * experiment engine's jobs are pure computations that will finish —
 * it makes a hung or pathological cell *visible* in a multi-hour
 * sweep instead of silently stalling the run.
 */

#ifndef TSP_UTIL_WATCHDOG_H
#define TSP_UTIL_WATCHDOG_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/cancel.h"

namespace tsp::util {

/** Background deadline monitor over RAII-registered tasks. */
class Watchdog
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Invoked (off the task's thread) when a task exceeds the
     *  deadline; receives the task label and its elapsed time. */
    using Callback = std::function<void(
        const std::string &label, std::chrono::milliseconds elapsed)>;

    /**
     * @param deadline flag tasks running longer than this
     * @param onOverdue callback; empty = warn() a standard message
     * @param pollInterval monitor wake-up period
     */
    explicit Watchdog(
        std::chrono::milliseconds deadline,
        Callback onOverdue = Callback(),
        std::chrono::milliseconds pollInterval =
            std::chrono::milliseconds(20));

    /** Joins the monitor thread. Outstanding guards must not outlive
     *  the watchdog. */
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** RAII handle: registration lives from watch() to destruction. */
    class Guard
    {
      public:
        Guard(Guard &&other) noexcept
            : dog_(other.dog_), id_(other.id_)
        {
            other.dog_ = nullptr;
        }
        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;
        Guard &operator=(Guard &&) = delete;
        ~Guard();

      private:
        friend class Watchdog;
        Guard(Watchdog *dog, uint64_t id) : dog_(dog), id_(id) {}

        Watchdog *dog_;
        uint64_t id_;
    };

    /** Register a task under @p label until the Guard dies. */
    [[nodiscard]] Guard watch(std::string label);

    /**
     * Escalate from flagging to cancelling: once any task goes
     * overdue, also trip @p token, so a sweep polling it winds down
     * instead of queueing more cells behind the stuck one. The token
     * must outlive the watchdog; nullptr (the default) restores
     * flag-only behavior.
     */
    void cancelOnOverdue(CancelToken *token);

    /** Number of tasks flagged overdue so far (each at most once). */
    uint64_t overdueCount() const;

    /** Labels of every task flagged so far, in flag order. */
    std::vector<std::string> overdueLabels() const;

    /** The configured deadline. */
    std::chrono::milliseconds deadline() const { return deadline_; }

  private:
    struct Task
    {
        std::string label;
        Clock::time_point start;
        bool flagged = false;
    };

    void unwatch(uint64_t id);
    void loop();

    std::chrono::milliseconds deadline_;
    std::chrono::milliseconds poll_;
    Callback callback_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<uint64_t, Task> tasks_;
    std::vector<std::string> overdue_;
    CancelToken *cancelOnOverdue_ = nullptr;
    uint64_t nextId_ = 0;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace tsp::util

#endif // TSP_UTIL_WATCHDOG_H
