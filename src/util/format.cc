#include "util/format.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace tsp::util {

std::string
fmtFixed(double x, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, x);
    return buf;
}

std::string
fmtPercent(double fraction, int prec)
{
    return fmtFixed(fraction * 100.0, prec) + "%";
}

std::string
fmtThousands(int64_t x)
{
    std::string digits = std::to_string(x < 0 ? -x : x);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    if (x < 0)
        out.push_back('-');
    return {out.rbegin(), out.rend()};
}

std::string
fmtCompact(double x)
{
    static const std::array<const char *, 4> suffix = {"", "k", "M", "G"};
    double mag = std::fabs(x);
    size_t idx = 0;
    while (mag >= 1000.0 && idx + 1 < suffix.size()) {
        mag /= 1000.0;
        x /= 1000.0;
        ++idx;
    }
    int prec = mag >= 100.0 ? 0 : (mag >= 10.0 ? 1 : 2);
    if (idx == 0 && std::fabs(x - std::round(x)) < 1e-9)
        return std::to_string(static_cast<int64_t>(std::llround(x)));
    return fmtFixed(x, prec) + suffix[idx];
}

std::string
fmtRatio(double x, int prec)
{
    return fmtFixed(x, prec) + "x";
}

std::string
fmtBytes(uint64_t bytes)
{
    static const std::array<const char *, 4> unit = {"B", "KB", "MB", "GB"};
    double v = static_cast<double>(bytes);
    size_t idx = 0;
    while (v >= 1024.0 && idx + 1 < unit.size()) {
        v /= 1024.0;
        ++idx;
    }
    if (std::fabs(v - std::round(v)) < 1e-9) {
        return std::to_string(static_cast<int64_t>(std::llround(v))) + " " +
               unit[idx];
    }
    return fmtFixed(v, 1) + " " + unit[idx];
}

} // namespace tsp::util
