/**
 * @file
 * ASCII table renderer used by the benchmark harness to print tables and
 * figure series in a layout close to the paper's.
 */

#ifndef TSP_UTIL_TABLE_H
#define TSP_UTIL_TABLE_H

#include <cstddef>
#include <string>
#include <vector>

namespace tsp::util {

/** Column alignment within a rendered table. */
enum class Align { Left, Right };

/**
 * A simple text table: a title, one header row, and data rows. Column
 * widths are computed from content; numeric-looking columns default to
 * right alignment unless overridden.
 */
class TextTable
{
  public:
    /** Construct with an optional title printed above the table. */
    explicit TextTable(std::string title = "");

    /** Set the header cells; defines the column count. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row; must match the header width if one is set. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator before the next added row. */
    void addSeparator();

    /** Force alignment of column @p col. */
    void setAlign(size_t col, Align align);

    /** Number of data rows added so far. */
    size_t rowCount() const { return rows_.size(); }

    /** Render the table to a string (trailing newline included). */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    bool looksNumeric(size_t col) const;

    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<size_t> separators_;  //!< row indices preceded by a rule
    std::vector<std::pair<size_t, Align>> forcedAlign_;
};

} // namespace tsp::util

#endif // TSP_UTIL_TABLE_H
