#include "util/file_lock.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "util/error.h"

namespace tsp::util {

FileLock::FileLock(const std::string &path, Mode mode)
{
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    fatalIf(fd_ < 0, "cannot open lock file " + path + ": " +
                         std::strerror(errno));

    int op = mode == Mode::Shared ? LOCK_SH : LOCK_EX;
    // Try without blocking first so contention is observable, then
    // block (retrying through signal interruptions).
    if (::flock(fd_, op | LOCK_NB) == 0)
        return;
    if (errno != EWOULDBLOCK && errno != EINTR) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        fatal("cannot lock " + path + ": " + std::strerror(err));
    }
    waited_ = true;
    while (::flock(fd_, op) != 0) {
        if (errno == EINTR)
            continue;
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        fatal("cannot lock " + path + ": " + std::strerror(err));
    }
}

FileLock::~FileLock()
{
    if (fd_ >= 0) {
        // Closing drops this descriptor's flock; kernel cleanup gives
        // the same guarantee if the process dies instead.
        ::close(fd_);
    }
}

} // namespace tsp::util
