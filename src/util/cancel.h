/**
 * @file
 * Cooperative cancellation token for long-running sweeps.
 *
 * A CancelToken is a one-way latch: once requestCancel() is called the
 * token stays cancelled. Producers of long work (ParallelRunner's
 * fan-out loop, the Watchdog monitor) poll it at safe points and wind
 * down cleanly — completed cells stay journaled, pending cells are
 * reported as cancelled, nothing is killed mid-write.
 *
 * requestCancel() is async-signal-safe when std::atomic<bool> is
 * lock-free (it is on every supported platform), so tsp-run's
 * SIGINT/SIGTERM handlers can trip the token directly and let the
 * sweep flush its checkpoint, metrics and trace sink before exiting.
 */

#ifndef TSP_UTIL_CANCEL_H
#define TSP_UTIL_CANCEL_H

#include <atomic>
#include <string>

#include "util/error.h"

namespace tsp::util {

/** One-way cooperative cancellation latch. */
class CancelToken
{
  public:
    /** Latch the token; idempotent and async-signal-safe. */
    void
    requestCancel() noexcept
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    /** True once requestCancel() has been called. */
    bool
    cancelled() const noexcept
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** Throw FatalError("<what> cancelled") when cancelled. */
    void
    throwIfCancelled(const std::string &what) const
    {
        fatalIf(cancelled(), what + " cancelled");
    }

  private:
    std::atomic<bool> cancelled_{false};
};

} // namespace tsp::util

#endif // TSP_UTIL_CANCEL_H
