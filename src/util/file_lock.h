/**
 * @file
 * Advisory file locking (BSD flock) for artifacts shared between
 * processes. The result store takes a shared lock to load and an
 * exclusive lock around its read-merge-publish cycle, so several
 * daemons — or a daemon plus a CLI — can share one TSPS file without
 * a racing writer dropping the other's records.
 *
 * The lock lives on a dedicated sidecar file (`<artifact>.lock`)
 * rather than the artifact itself: the artifact is published by
 * atomic rename, which replaces its inode, and a lock held on a
 * replaced inode protects nothing.
 *
 * Advisory means cooperating: every writer must take the lock, and a
 * process that bypasses it is not stopped. Locks are released by the
 * destructor and — crucially for kill -9 robustness — by the kernel
 * when the holder dies, so a crashed daemon never wedges the fleet.
 */

#ifndef TSP_UTIL_FILE_LOCK_H
#define TSP_UTIL_FILE_LOCK_H

#include <string>

namespace tsp::util {

/**
 * RAII advisory flock on @p path (created if absent). Construction
 * blocks until the lock is granted; destruction releases it. Throws
 * FatalError when the lock file cannot be opened or locked.
 */
class FileLock
{
  public:
    enum class Mode {
        Shared,     //!< many readers may hold it together
        Exclusive,  //!< one writer, excluding readers too
    };

    FileLock(const std::string &path, Mode mode);
    ~FileLock();

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    /**
     * True when the lock was contended — another process held a
     * conflicting lock and this acquisition had to wait. Callers use
     * this to count lock waits without the lock layer depending on
     * the metrics layer.
     */
    bool waited() const { return waited_; }

  private:
    int fd_ = -1;
    bool waited_ = false;
};

} // namespace tsp::util

#endif // TSP_UTIL_FILE_LOCK_H
