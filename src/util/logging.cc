#include "util/logging.h"

#include <iostream>

namespace tsp::util {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, const std::string &msg)
{
    if (level < level_)
        return;
    const char *tag = "";
    switch (level) {
      case LogLevel::Debug: tag = "debug: "; break;
      case LogLevel::Info:  tag = "info: ";  break;
      case LogLevel::Warn:  tag = "warn: ";  break;
      case LogLevel::Silent: return;
    }
    std::cerr << tag << msg << '\n';
}

void
inform(const std::string &msg)
{
    Logger::instance().log(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    Logger::instance().log(LogLevel::Warn, msg);
}

void
debug(const std::string &msg)
{
    Logger::instance().log(LogLevel::Debug, msg);
}

} // namespace tsp::util
