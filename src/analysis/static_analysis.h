/**
 * @file
 * Whole-application static analysis: pairwise sharing matrices and
 * per-thread sharing statistics, computed once per trace set and reused
 * by every placement algorithm.
 *
 * Definitions (Sections 2 and 3.1):
 *  - shared-references(t_a, t_b): references made by t_a and t_b to
 *    their common (word) addresses;
 *  - shared-addresses(t_a, t_b): the number of those common addresses;
 *  - write-shared-references(t_a, t_b): like shared-references but
 *    restricted to common addresses written by at least one of the two
 *    (the data responsible for invalidations; used by MAX-WRITES);
 *  - a globally *shared address* is one referenced by two or more
 *    threads; all other addresses are private (used by MIN-PRIV).
 */

#ifndef TSP_ANALYSIS_STATIC_ANALYSIS_H
#define TSP_ANALYSIS_STATIC_ANALYSIS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/pair_matrix.h"
#include "trace/trace_set.h"

namespace tsp::analysis {

/**
 * Immutable result of analyzing one application's trace set.
 */
class StaticAnalysis
{
  public:
    /** Run the full analysis over @p set. */
    static StaticAnalysis analyze(const trace::TraceSet &set);

    /** Application name. */
    const std::string &appName() const { return name_; }

    /** Number of threads. */
    size_t threadCount() const { return threadLength_.size(); }

    /** shared-references(t_a, t_b) for all pairs. */
    const stats::PairMatrix &sharedRefs() const { return sharedRefs_; }

    /** Distinct common addresses per pair. */
    const stats::PairMatrix &sharedAddrs() const { return sharedAddrs_; }

    /** Write-shared references per pair (MAX-WRITES metric input). */
    const stats::PairMatrix &
    writeSharedRefs() const
    {
        return writeSharedRefs_;
    }

    /** Dynamic instruction length of each thread. */
    const std::vector<uint64_t> &threadLength() const
    {
        return threadLength_;
    }

    /** Total data references of each thread. */
    const std::vector<uint64_t> &threadRefs() const { return threadRefs_; }

    /** Per-thread references to globally shared addresses. */
    const std::vector<uint64_t> &
    threadSharedRefs() const
    {
        return threadSharedRefs_;
    }

    /** Per-thread count of distinct globally shared addresses touched. */
    const std::vector<uint64_t> &
    threadSharedAddrs() const
    {
        return threadSharedAddrs_;
    }

    /** Per-thread count of private addresses (touched by nobody else). */
    const std::vector<uint64_t> &
    threadPrivateAddrs() const
    {
        return threadPrivateAddrs_;
    }

    /** Total data references in the application. */
    uint64_t totalRefs() const { return totalRefs_; }

    /** Total instructions in the application. */
    uint64_t totalInstructions() const { return totalInstructions_; }

    /** Distinct globally shared addresses in the application. */
    uint64_t sharedAddrCount() const { return sharedAddrCount_; }

    /** Sum of per-thread private address counts. */
    uint64_t privateAddrCount() const { return privateAddrCount_; }

  private:
    StaticAnalysis() = default;

    std::string name_;
    stats::PairMatrix sharedRefs_;
    stats::PairMatrix sharedAddrs_;
    stats::PairMatrix writeSharedRefs_;
    std::vector<uint64_t> threadLength_;
    std::vector<uint64_t> threadRefs_;
    std::vector<uint64_t> threadSharedRefs_;
    std::vector<uint64_t> threadSharedAddrs_;
    std::vector<uint64_t> threadPrivateAddrs_;
    uint64_t totalRefs_ = 0;
    uint64_t totalInstructions_ = 0;
    uint64_t sharedAddrCount_ = 0;
    uint64_t privateAddrCount_ = 0;
};

} // namespace tsp::analysis

#endif // TSP_ANALYSIS_STATIC_ANALYSIS_H
