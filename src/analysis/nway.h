/**
 * @file
 * N-way sharing: intra-cluster shared references when threads are
 * grouped at the maximum threads-per-processor point (2 processors),
 * the second extreme reported in Table 2. Because the exact grouping is
 * placement-dependent, we report statistics over sampled thread-balanced
 * partitions.
 */

#ifndef TSP_ANALYSIS_NWAY_H
#define TSP_ANALYSIS_NWAY_H

#include <cstddef>

#include "stats/pair_matrix.h"
#include "stats/summary.h"
#include "util/rng.h"

namespace tsp::analysis {

/**
 * Sample @p samples random thread-balanced partitions of the threads of
 * @p pairwise into @p clusters clusters, and summarize the intra-cluster
 * shared-reference totals (one observation per cluster per sample).
 */
stats::Summary nwaySharing(const stats::PairMatrix &pairwise,
                           size_t clusters, size_t samples,
                           util::Rng &rng);

} // namespace tsp::analysis

#endif // TSP_ANALYSIS_NWAY_H
