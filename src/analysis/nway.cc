#include "analysis/nway.h"

#include <numeric>
#include <vector>

#include "util/error.h"

namespace tsp::analysis {

stats::Summary
nwaySharing(const stats::PairMatrix &pairwise, size_t clusters,
            size_t samples, util::Rng &rng)
{
    const size_t t = pairwise.size();
    util::fatalIf(clusters == 0 || clusters > t,
                  "invalid cluster count for N-way sharing");

    std::vector<uint32_t> order(t);
    std::iota(order.begin(), order.end(), 0u);

    stats::Summary summary;
    for (size_t s = 0; s < samples; ++s) {
        rng.shuffle(order);
        // Deal threads round-robin into thread-balanced clusters.
        std::vector<std::vector<uint32_t>> groups(clusters);
        for (size_t i = 0; i < t; ++i)
            groups[i % clusters].push_back(order[i]);
        for (const auto &group : groups)
            summary.add(pairwise.withinSum(group));
    }
    return summary;
}

} // namespace tsp::analysis
