/**
 * @file
 * Per-thread static trace summary: the raw material of every
 * sharing-based placement metric (Section 3.1). This mirrors what the
 * paper extracts by statically analyzing MPtrace per-thread trace files
 * (and what summary side-effect analysis in a compiler could
 * approximate).
 */

#ifndef TSP_ANALYSIS_THREAD_SUMMARY_H
#define TSP_ANALYSIS_THREAD_SUMMARY_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "trace/thread_trace.h"

namespace tsp::analysis {

/**
 * Per-address access counts for one thread.
 */
struct AddrAccess
{
    uint64_t reads = 0;
    uint64_t writes = 0;

    uint64_t total() const { return reads + writes; }
    bool written() const { return writes > 0; }
};

/**
 * Summary of one thread's trace: instruction length plus per-address
 * read/write counts over *word* addresses. We count distinct addresses
 * rather than cache lines, exactly as the paper does (footnote 1), so
 * false sharing is excluded from static metrics.
 */
class ThreadSummary
{
  public:
    /** Build a summary by scanning @p tt once. */
    explicit ThreadSummary(const trace::ThreadTrace &tt);

    /** Thread id. */
    trace::ThreadId id() const { return id_; }

    /** Total instructions (work + references). */
    uint64_t instructionCount() const { return instructions_; }

    /** Total data references. */
    uint64_t memRefCount() const { return memRefs_; }

    /** Distinct word addresses referenced. */
    size_t distinctAddrs() const { return accesses_.size(); }

    /** Reference counts for @p addr (zeros when never referenced). */
    AddrAccess access(uint64_t addr) const;

    /** The full per-address access map. */
    const std::unordered_map<uint64_t, AddrAccess> &
    accesses() const
    {
        return accesses_;
    }

  private:
    trace::ThreadId id_;
    uint64_t instructions_ = 0;
    uint64_t memRefs_ = 0;
    std::unordered_map<uint64_t, AddrAccess> accesses_;
};

} // namespace tsp::analysis

#endif // TSP_ANALYSIS_THREAD_SUMMARY_H
