#include "analysis/characteristics.h"

#include "analysis/nway.h"
#include "stats/summary.h"

namespace tsp::analysis {

CharacteristicsRow
computeCharacteristics(const StaticAnalysis &analysis, util::Rng &rng)
{
    CharacteristicsRow row;
    row.app = analysis.appName();
    const size_t t = analysis.threadCount();

    auto pair = analysis.sharedRefs().pairSummary();
    row.pairwiseMean = pair.mean();
    row.pairwiseDevPct = pair.devPercent();

    if (t >= 2) {
        auto nway = nwaySharing(analysis.sharedRefs(), 2,
                                /*samples=*/32, rng);
        row.nwayMean = nway.mean();
        row.nwayDevPct = nway.devPercent();
    }

    stats::Summary refsPerAddr;
    stats::Summary sharedPct;
    stats::Summary length;
    for (size_t i = 0; i < t; ++i) {
        uint64_t sharedAddrs = analysis.threadSharedAddrs()[i];
        uint64_t sharedRefs = analysis.threadSharedRefs()[i];
        if (sharedAddrs > 0) {
            refsPerAddr.add(static_cast<double>(sharedRefs) /
                            static_cast<double>(sharedAddrs));
        }
        uint64_t refs = analysis.threadRefs()[i];
        if (refs > 0) {
            sharedPct.add(100.0 * static_cast<double>(sharedRefs) /
                          static_cast<double>(refs));
        }
        length.add(static_cast<double>(analysis.threadLength()[i]));
    }
    row.refsPerSharedAddrMean = refsPerAddr.mean();
    row.refsPerSharedAddrDevPct = refsPerAddr.devPercent();
    row.sharedRefsPct = sharedPct.mean();
    row.lengthMean = length.mean();
    row.lengthDevPct = length.devPercent();
    return row;
}

} // namespace tsp::analysis
