#include "analysis/thread_summary.h"

namespace tsp::analysis {

ThreadSummary::ThreadSummary(const trace::ThreadTrace &tt) : id_(tt.id())
{
    instructions_ = tt.instructionCount();
    memRefs_ = tt.memRefCount();
    accesses_.reserve(tt.memRefCount() / 8 + 16);
    for (const auto &e : tt.events()) {
        if (!e.isMemRef())
            continue;
        auto &acc = accesses_[e.address()];
        if (e.isStore())
            ++acc.writes;
        else
            ++acc.reads;
    }
}

AddrAccess
ThreadSummary::access(uint64_t addr) const
{
    auto it = accesses_.find(addr);
    return it == accesses_.end() ? AddrAccess{} : it->second;
}

} // namespace tsp::analysis
