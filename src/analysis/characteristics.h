/**
 * @file
 * The measured-characteristics row of Table 2, computed from a
 * StaticAnalysis: pairwise and N-way sharing (mean, Dev%), references
 * per shared address (mean, Dev%), percentage of shared references, and
 * simulated thread length (mean, Dev%).
 */

#ifndef TSP_ANALYSIS_CHARACTERISTICS_H
#define TSP_ANALYSIS_CHARACTERISTICS_H

#include <string>

#include "analysis/static_analysis.h"
#include "util/rng.h"

namespace tsp::analysis {

/** One application's row of Table 2. */
struct CharacteristicsRow
{
    std::string app;

    double pairwiseMean = 0;     //!< mean shared refs per thread pair
    double pairwiseDevPct = 0;

    double nwayMean = 0;         //!< intra-cluster sharing at 2 procs
    double nwayDevPct = 0;

    double refsPerSharedAddrMean = 0;  //!< per-thread temporal locality
    double refsPerSharedAddrDevPct = 0;

    double sharedRefsPct = 0;    //!< % of data refs to shared addresses

    double lengthMean = 0;       //!< thread length (instructions)
    double lengthDevPct = 0;
};

/**
 * Compute the Table 2 row for @p analysis. @p rng drives the partition
 * sampling behind the N-way statistic.
 */
CharacteristicsRow computeCharacteristics(const StaticAnalysis &analysis,
                                          util::Rng &rng);

} // namespace tsp::analysis

#endif // TSP_ANALYSIS_CHARACTERISTICS_H
