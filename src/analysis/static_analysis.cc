#include "analysis/static_analysis.h"

#include <unordered_map>

#include "analysis/thread_summary.h"
#include "util/error.h"

namespace tsp::analysis {

namespace {

/** One thread's accesses to one address, in the inverted index. */
struct SharerEntry
{
    uint32_t tid;
    uint64_t count;
    bool wrote;
};

/** Per-address record in the inverted index built during analysis. */
struct AddrInfo
{
    /** Every thread referencing this address. */
    std::vector<SharerEntry> refs;
};

} // namespace

StaticAnalysis
StaticAnalysis::analyze(const trace::TraceSet &set)
{
    const size_t t = set.threadCount();
    util::fatalIf(t == 0, "cannot analyze an empty trace set");

    StaticAnalysis out;
    out.name_ = set.name();
    out.sharedRefs_ = stats::PairMatrix(t);
    out.sharedAddrs_ = stats::PairMatrix(t);
    out.writeSharedRefs_ = stats::PairMatrix(t);
    out.threadLength_.resize(t);
    out.threadRefs_.resize(t);
    out.threadSharedRefs_.assign(t, 0);
    out.threadSharedAddrs_.assign(t, 0);
    out.threadPrivateAddrs_.assign(t, 0);

    // Build the inverted per-address index from per-thread summaries.
    std::unordered_map<uint64_t, AddrInfo> index;
    for (size_t i = 0; i < t; ++i) {
        ThreadSummary summary(set.thread(static_cast<uint32_t>(i)));
        out.threadLength_[i] = summary.instructionCount();
        out.threadRefs_[i] = summary.memRefCount();
        out.totalRefs_ += summary.memRefCount();
        out.totalInstructions_ += summary.instructionCount();
        for (const auto &[addr, acc] : summary.accesses()) {
            index[addr].refs.push_back({static_cast<uint32_t>(i),
                                        acc.total(), acc.written()});
        }
    }

    // Fold each address's sharer list into the pairwise matrices and the
    // per-thread totals.
    for (const auto &[addr, info] : index) {
        (void)addr;
        const auto &sharers = info.refs;
        if (sharers.size() < 2) {
            ++out.threadPrivateAddrs_[sharers.front().tid];
            ++out.privateAddrCount_;
            continue;
        }
        ++out.sharedAddrCount_;
        for (const auto &entry : sharers) {
            out.threadSharedRefs_[entry.tid] += entry.count;
            ++out.threadSharedAddrs_[entry.tid];
        }
        for (size_t a = 0; a < sharers.size(); ++a) {
            for (size_t b = a + 1; b < sharers.size(); ++b) {
                const auto &ea = sharers[a];
                const auto &eb = sharers[b];
                double pairRefs = static_cast<double>(ea.count + eb.count);
                out.sharedRefs_.add(ea.tid, eb.tid, pairRefs);
                out.sharedAddrs_.add(ea.tid, eb.tid, 1.0);
                if (ea.wrote || eb.wrote)
                    out.writeSharedRefs_.add(ea.tid, eb.tid, pairRefs);
            }
        }
    }

    return out;
}

} // namespace tsp::analysis
