/**
 * @file
 * Streaming chunked trace pipeline. Instead of materializing whole
 * ThreadTraces up front, a ChunkProducer emits one thread's events in
 * bounded batches on demand, and a SharedTraceStream shares one
 * producer pass across several simulator lanes (sim::BatchMachine)
 * running in lockstep over the same workload:
 *
 *     workload generator (ChunkProducer per thread, via StreamFactory)
 *         -> SharedTraceStream (bounded per-thread chunk windows)
 *             -> per-lane TraceSource views
 *                 -> trace::ChunkFeed -> TraceCursor (chunked mode)
 *
 * Memory stays O(chunk x lanes): a chunk is dropped as soon as every
 * lane has moved past it, so the resident window per thread is the
 * spread between the fastest and slowest lane plus one chunk. The
 * lockstep scheduler keeps that spread small (docs/performance.md).
 *
 * Not thread-safe: one stream is driven from a single thread (the
 * thread running the owning BatchMachine).
 */

#ifndef TSP_TRACE_CHUNK_SOURCE_H
#define TSP_TRACE_CHUNK_SOURCE_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "trace/thread_trace.h"
#include "trace/trace_set.h"

namespace tsp::trace {

/**
 * Produces one thread's events in bounded batches. Each produce()
 * appends the next batch to @p out and returns true; at end-of-trace
 * it appends nothing and returns false (and keeps returning false if
 * polled again). Batch sizes are producer-chosen; the stream
 * accumulates batches into chunks of its configured size.
 */
class ChunkProducer
{
  public:
    virtual ~ChunkProducer() = default;

    /** Append the next batch; false at end of trace (none appended). */
    virtual bool produce(std::vector<TraceEvent> &out) = 0;

    /**
     * Optional capability: deep-copy this producer mid-pass, so the
     * copy resumes from the same position independently. Snapshots
     * taken at batch boundaries let consumers seek into long traces
     * without replaying the prefix (sample::SeekIndex). Producers
     * without the capability return nullptr (the default).
     */
    virtual std::unique_ptr<ChunkProducer>
    clone() const
    {
        return nullptr;
    }
};

/**
 * A replayable application trace in producer form. openProducer()
 * starts a fresh deterministic pass over one thread: every open of the
 * same tid must replay the identical event sequence, which is what
 * lets the census pass and the simulation pass (and any retry) agree.
 */
class StreamFactory
{
  public:
    virtual ~StreamFactory() = default;

    /** Number of threads in the application. */
    virtual uint32_t threadCount() const = 0;

    /** Barriers thread @p tid will emit (known without replay). */
    virtual uint64_t barrierCount(ThreadId tid) const = 0;

    /** Open a fresh pass over thread @p tid. */
    virtual std::unique_ptr<ChunkProducer> openProducer(ThreadId tid) = 0;
};

/**
 * What one simulator lane consumes: the streaming counterpart of a
 * const TraceSet&. The Machine sizes itself from threadCount(),
 * barrierCount() and touchedBlocks(), then pulls each thread's events
 * through the ChunkFeed that openThread() returns.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    virtual uint32_t threadCount() const = 0;
    virtual uint64_t barrierCount(ThreadId tid) const = 0;

    /**
     * Touched-block census at @p blockShift (one dedicated producer
     * pass on first call, memoized per shift). Reference valid for the
     * source's lifetime.
     */
    virtual const TraceSet::TouchedBlocks &
    touchedBlocks(unsigned blockShift) = 0;

    /**
     * The feed carrying thread @p tid's events to this lane. May be
     * called once per (lane, tid); the feed lives in the owning
     * stream.
     */
    virtual ChunkFeed &openThread(ThreadId tid) = 0;
};

/**
 * Fans one StreamFactory out to @p lanes independent TraceSource
 * views, buffering per-thread chunk windows so each lane sees the full
 * event sequence while only the [slowest lane, fastest lane] spread
 * stays resident.
 */
class SharedTraceStream
{
  public:
    /** Default chunk granularity, in events. */
    static constexpr size_t kDefaultChunkEvents = 4096;

    SharedTraceStream(StreamFactory &factory, uint32_t lanes,
                      size_t chunkEvents = kDefaultChunkEvents);

    /** Number of lane views. */
    uint32_t laneCount() const { return laneCount_; }

    /** Lane view @p lane (stable reference, owned by the stream). */
    TraceSource &lane(uint32_t lane);

    /** Census shared by all lanes (memoized per shift). */
    const TraceSet::TouchedBlocks &touchedBlocks(unsigned blockShift);

    /**
     * Drop lane @p lane from the window accounting: its positions no
     * longer hold chunks resident. Called when a lane finishes or
     * fails, so a dead laggard cannot make the windows grow without
     * bound. The lane's feeds must not be pulled afterwards.
     */
    void retireLane(uint32_t lane);

    /** Chunks pulled from producers so far. */
    uint64_t refillCount() const { return refills_; }

    /** Events currently resident across all thread windows. */
    size_t windowEventsNow() const { return windowEventsNow_; }

    /** Largest windowEventsNow() ever observed: the memory bound. */
    size_t
    windowEventsHighWater() const
    {
        return windowEventsHighWater_;
    }

  private:
    /** ChunkFeed for one (lane, thread) pair. */
    class LaneFeed : public ChunkFeed
    {
      public:
        LaneFeed(SharedTraceStream &owner, uint32_t lane, ThreadId tid)
            : owner_(&owner), lane_(lane), tid_(tid)
        {
        }

        bool
        next(const TraceEvent **begin, const TraceEvent **end) override
        {
            return owner_->feedNext(lane_, tid_, begin, end);
        }

      private:
        SharedTraceStream *owner_;
        uint32_t lane_;
        ThreadId tid_;
    };

    /** TraceSource view of one lane. */
    class LaneSource : public TraceSource
    {
      public:
        LaneSource(SharedTraceStream &owner, uint32_t lane)
            : owner_(&owner), lane_(lane)
        {
        }

        uint32_t
        threadCount() const override
        {
            return owner_->factory_.threadCount();
        }

        uint64_t
        barrierCount(ThreadId tid) const override
        {
            return owner_->factory_.barrierCount(tid);
        }

        const TraceSet::TouchedBlocks &
        touchedBlocks(unsigned blockShift) override
        {
            return owner_->touchedBlocks(blockShift);
        }

        ChunkFeed &openThread(ThreadId tid) override;

      private:
        SharedTraceStream *owner_;
        uint32_t lane_;
    };

    /**
     * One thread's chunk window: chunks [loIdx, hiIdx) are resident;
     * laneNext[l] is the next chunk index lane l will request (so the
     * lane may still be consuming laneNext[l] - 1). std::deque of
     * vectors: push/pop at the ends never moves the other chunks, so
     * spans handed to cursors stay valid until trimmed.
     */
    struct ThreadWindow
    {
        std::unique_ptr<ChunkProducer> producer;
        bool eof = false;
        std::deque<std::vector<TraceEvent>> chunks;
        size_t loIdx = 0;
        size_t hiIdx = 0;
        std::vector<size_t> laneNext;
    };

    bool feedNext(uint32_t lane, ThreadId tid, const TraceEvent **begin,
                  const TraceEvent **end);

    /** Pull one more chunk into @p w; false at end of trace. */
    bool refill(ThreadWindow &w, ThreadId tid);

    /** Drop chunks every lane has moved past. */
    void trim(ThreadWindow &w);

    StreamFactory &factory_;
    uint32_t laneCount_;
    size_t chunkEvents_;
    std::vector<uint8_t> retired_;  //!< 1 = lane dropped from windows
    std::vector<ThreadWindow> windows_;
    std::vector<LaneSource> laneSources_;
    std::vector<LaneFeed> feeds_;  //!< lane-major: [lane * threads + tid]
    std::map<unsigned, TraceSet::TouchedBlocks> census_;
    uint64_t refills_ = 0;
    size_t windowEventsNow_ = 0;
    size_t windowEventsHighWater_ = 0;
};

} // namespace tsp::trace

#endif // TSP_TRACE_CHUNK_SOURCE_H
