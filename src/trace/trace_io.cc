#include "trace/trace_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/error.h"

namespace tsp::trace {

namespace {

constexpr char kMagic[4] = {'T', 'S', 'P', 'T'};
constexpr uint32_t kVersion = 1;

void
writeU32(std::ostream &os, uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU64(std::ostream &os, uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

uint32_t
readU32(std::istream &is)
{
    uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    util::fatalIf(!is, "truncated trace file");
    return v;
}

uint64_t
readU64(std::istream &is)
{
    uint64_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    util::fatalIf(!is, "truncated trace file");
    return v;
}

} // namespace

void
saveBinary(const TraceSet &set, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    writeU32(os, kVersion);
    writeU32(os, static_cast<uint32_t>(set.name().size()));
    os.write(set.name().data(),
             static_cast<std::streamsize>(set.name().size()));
    writeU32(os, static_cast<uint32_t>(set.threadCount()));
    for (const auto &t : set.threads()) {
        writeU32(os, t.id());
        writeU64(os, t.events().size());
        for (const auto &e : t.events())
            writeU64(os, e.raw());
    }
    util::fatalIf(!os, "trace write failed");
}

TraceSet
loadBinary(std::istream &is)
{
    char magic[4] = {};
    is.read(magic, sizeof(magic));
    util::fatalIf(!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0,
                  "not a TSPT trace file");
    uint32_t version = readU32(is);
    util::fatalIf(version != kVersion, "unsupported trace file version");

    uint32_t nameLen = readU32(is);
    std::string name(nameLen, '\0');
    is.read(name.data(), nameLen);
    util::fatalIf(!is, "truncated trace file");

    TraceSet set(name);
    uint32_t threads = readU32(is);
    for (uint32_t i = 0; i < threads; ++i) {
        uint32_t id = readU32(is);
        util::fatalIf(id != i, "trace file thread ids must be dense");
        uint64_t count = readU64(is);
        ThreadTrace tt(id);
        tt.reserve(count);
        for (uint64_t k = 0; k < count; ++k)
            tt.append(TraceEvent::fromRaw(readU64(is)));
        set.addThread(std::move(tt));
    }
    return set;
}

void
saveFile(const TraceSet &set, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    util::fatalIf(!os, "cannot open trace file for writing: " + path);
    saveBinary(set, os);
}

TraceSet
loadFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    util::fatalIf(!is, "cannot open trace file: " + path);
    return loadBinary(is);
}

} // namespace tsp::trace
