#include "trace/trace_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "fault/fault.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/retry.h"

namespace tsp::trace {

namespace {

constexpr char kMagic[4] = {'T', 'S', 'P', 'T'};

// Version 2 adds a payload length + CRC-32 after the header so any
// corruption (flip, truncation, torn write) is detected up front;
// version 1 files (raw body, no checksum) remain readable.
constexpr uint32_t kVersion = 2;

void
writeU32(std::ostream &os, uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU64(std::ostream &os, uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

/** Offset of the stream's read cursor (0 when unknown). */
uint64_t
offsetOf(std::istream &is)
{
    auto pos = is.tellg();
    return pos < 0 ? 0 : static_cast<uint64_t>(pos);
}

/** Corruption error pointing at a file offset. */
[[noreturn]] void
corrupt(uint64_t offset, const std::string &why)
{
    util::fatal(util::concat("trace file corrupt at offset ", offset,
                             ": ", why));
}

uint32_t
readU32(std::istream &is)
{
    uint64_t at = offsetOf(is);
    uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        corrupt(at, "truncated while reading a 4-byte field");
    return v;
}

uint64_t
readU64(std::istream &is)
{
    uint64_t at = offsetOf(is);
    uint64_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        corrupt(at, "truncated while reading an 8-byte field");
    return v;
}

/**
 * Bytes left between the read cursor and the end of the stream, or
 * nullopt when the stream is not seekable. Every declared count/size
 * in the file is validated against this *before* any allocation, so a
 * corrupt length can never provoke a bad_alloc or an unbounded read.
 */
std::optional<uint64_t>
streamRemaining(std::istream &is)
{
    auto cur = is.tellg();
    if (cur < 0)
        return std::nullopt;
    is.seekg(0, std::ios::end);
    auto end = is.tellg();
    is.seekg(cur, std::ios::beg);
    if (end < 0 || !is)
        return std::nullopt;
    return static_cast<uint64_t>(end - cur);
}

/** Serialize the body (everything after the header) of @p set. */
void
writeBody(const TraceSet &set, std::ostream &os)
{
    writeU32(os, static_cast<uint32_t>(set.name().size()));
    os.write(set.name().data(),
             static_cast<std::streamsize>(set.name().size()));
    writeU32(os, static_cast<uint32_t>(set.threadCount()));
    for (const auto &t : set.threads()) {
        writeU32(os, t.id());
        writeU64(os, t.events().size());
        for (const auto &e : t.events())
            writeU64(os, e.raw());
    }
}

/**
 * Parse the body from @p is. Shared by the v1 path (reading straight
 * from the file) and the v2 path (reading from the checksummed,
 * length-verified payload buffer).
 */
TraceSet
readBody(std::istream &is)
{
    uint64_t at = offsetOf(is);
    uint32_t nameLen = readU32(is);
    auto remaining = streamRemaining(is);
    if (remaining && nameLen > *remaining) {
        corrupt(at, util::concat("declared name length ", nameLen,
                                 " exceeds the ", *remaining,
                                 " remaining bytes"));
    }
    std::string name(nameLen, '\0');
    is.read(name.data(), nameLen);
    if (!is)
        corrupt(at, "truncated inside the application name");

    TraceSet set(name);
    uint32_t threads = readU32(is);
    for (uint32_t i = 0; i < threads; ++i) {
        at = offsetOf(is);
        uint32_t id = readU32(is);
        if (id != i)
            corrupt(at, util::concat("thread ids must be dense (got ",
                                     id, ", expected ", i, ")"));
        uint64_t count = readU64(is);
        remaining = streamRemaining(is);
        if (remaining && count > *remaining / sizeof(uint64_t)) {
            corrupt(at, util::concat(
                            "declared event count ", count,
                            " exceeds the ", *remaining,
                            " remaining bytes"));
        }
        ThreadTrace tt(id);
        // Reserve only a validated count; on a non-seekable stream
        // the vector grows geometrically with the data actually read,
        // so a corrupt count still cannot force a huge allocation.
        if (remaining)
            tt.reserve(count);
        for (uint64_t k = 0; k < count; ++k)
            tt.append(TraceEvent::fromRaw(readU64(is)));
        set.addThread(std::move(tt));
    }
    return set;
}

} // namespace

void
saveBinary(const TraceSet &set, std::ostream &os)
{
    // Buffer the body to length- and checksum-stamp the header.
    std::ostringstream body;
    writeBody(set, body);
    std::string payload = body.str();

    os.write(kMagic, sizeof(kMagic));
    writeU32(os, kVersion);
    writeU64(os, payload.size());
    writeU32(os, util::crc32(payload));
    os.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
    util::fatalIf(!os, "trace write failed");
}

TraceSet
loadBinary(std::istream &is)
{
    TSP_FAULT_POINT("trace.decode");
    char magic[4] = {};
    is.read(magic, sizeof(magic));
    util::fatalIf(!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0,
                  "not a TSPT trace file");
    uint32_t version = readU32(is);
    if (version == 1)
        return readBody(is);  // legacy: no payload checksum
    util::fatalIf(version != kVersion,
                  util::concat("unsupported trace file version ",
                               version, " (supported: 1, ",
                               kVersion, ")"));

    uint64_t at = offsetOf(is);
    uint64_t payloadSize = readU64(is);
    uint32_t expectCrc = readU32(is);
    auto remaining = streamRemaining(is);
    if (remaining && payloadSize != *remaining) {
        corrupt(at, util::concat("declared payload size ", payloadSize,
                                 " does not match the ", *remaining,
                                 " remaining bytes"));
    }

    // Chunked read: even on a non-seekable stream a corrupt size
    // cannot trigger a huge up-front allocation — the buffer grows
    // only as real bytes arrive and truncation surfaces as FatalError.
    std::string payload;
    constexpr uint64_t kChunk = 1 << 20;
    payload.reserve(static_cast<size_t>(
        std::min<uint64_t>(payloadSize, kChunk)));
    std::vector<char> chunk;
    for (uint64_t got = 0; got < payloadSize;) {
        uint64_t want = std::min<uint64_t>(kChunk, payloadSize - got);
        chunk.resize(static_cast<size_t>(want));
        is.read(chunk.data(), static_cast<std::streamsize>(want));
        if (is.gcount() <= 0)
            corrupt(at, util::concat("payload truncated after ", got,
                                     " of ", payloadSize, " bytes"));
        payload.append(chunk.data(),
                       static_cast<size_t>(is.gcount()));
        got += static_cast<uint64_t>(is.gcount());
    }

    uint32_t gotCrc = util::crc32(payload);
    if (gotCrc != expectCrc) {
        corrupt(at, util::concat(
                        "payload checksum mismatch (stored ",
                        expectCrc, ", computed ", gotCrc, ")"));
    }

    std::istringstream body(payload);
    return readBody(body);
}

void
saveFile(const TraceSet &set, const std::string &path)
{
    // Atomic publish: write to a sibling temp file, then rename, so a
    // crash mid-write never leaves a torn .tspt behind. The open and
    // the rename retry on transient filesystem failures.
    std::string tmp = path + ".tmp";
    util::retry(
        [&] {
            TSP_FAULT_POINT("trace.write");
            std::ofstream os(tmp,
                             std::ios::binary | std::ios::trunc);
            util::fatalIf(
                !os, "cannot open trace file for writing: " + tmp);
            saveBinary(set, os);
            os.flush();
            util::fatalIf(!os, "trace write failed: " + tmp);
            os.close();
            util::fatalIf(std::rename(tmp.c_str(), path.c_str()) != 0,
                          "cannot publish trace file: " + path);
        },
        util::jitteredRetryPolicy(path), "trace save " + path);
}

TraceSet
loadFile(const std::string &path)
{
    std::ifstream is = util::retry(
        [&] {
            TSP_FAULT_POINT("trace.read");
            std::ifstream f(path, std::ios::binary);
            util::fatalIf(!f, "cannot open trace file: " + path);
            return f;
        },
        util::jitteredRetryPolicy(path), "trace open " + path);
    return loadBinary(is);
}

} // namespace tsp::trace
