/**
 * @file
 * Packed trace events.
 *
 * A trace is a per-thread instruction stream. Only data references are
 * individually represented; runs of instructions without data accesses
 * are compressed into a single "work" event carrying a repeat count.
 * This keeps multi-million-instruction threads compact (one word per
 * event) while preserving exact instruction counts, which drive both the
 * load-balancing metrics and simulated execution time.
 *
 * Encoding: the top 2 bits hold the kind, the low 62 bits hold either a
 * byte address (Load/Store) or an instruction count (Work).
 */

#ifndef TSP_TRACE_EVENT_H
#define TSP_TRACE_EVENT_H

#include <cstdint>

#include "util/error.h"

namespace tsp::trace {

/** Kind of a trace event. */
enum class EventKind : uint8_t {
    Work = 0,    //!< run of instructions with no data reference
    Load = 1,    //!< one instruction performing a data read
    Store = 2,   //!< one instruction performing a data write
    Barrier = 3, //!< global synchronization marker (zero cost locally)
};

/** One packed trace event. */
class TraceEvent
{
  public:
    /** Number of payload bits available for addresses/counts. */
    static constexpr unsigned payloadBits = 62;

    /** Largest representable address or work count. */
    static constexpr uint64_t maxPayload = (1ull << payloadBits) - 1;

    TraceEvent() : bits_(0) {}

    /** Build a work run of @p count instructions (count >= 1). */
    static TraceEvent
    work(uint64_t count)
    {
        util::panicIf(count == 0 || count > maxPayload,
                      "work count out of range");
        return TraceEvent(EventKind::Work, count);
    }

    /** Build a load of byte address @p addr. */
    static TraceEvent
    load(uint64_t addr)
    {
        util::panicIf(addr > maxPayload, "address out of range");
        return TraceEvent(EventKind::Load, addr);
    }

    /** Build a store of byte address @p addr. */
    static TraceEvent
    store(uint64_t addr)
    {
        util::panicIf(addr > maxPayload, "address out of range");
        return TraceEvent(EventKind::Store, addr);
    }

    /**
     * Build a barrier marker with sequence number @p index. All
     * threads of an application must execute the same barrier
     * sequence; the simulator blocks each thread at barrier k until
     * every thread has arrived at barrier k.
     */
    static TraceEvent
    barrier(uint64_t index)
    {
        util::panicIf(index > maxPayload, "barrier index out of range");
        return TraceEvent(EventKind::Barrier, index);
    }

    /** Event kind. */
    EventKind kind() const { return static_cast<EventKind>(bits_ >> 62); }

    /** True for Load and Store events. */
    bool
    isMemRef() const
    {
        return kind() == EventKind::Load || kind() == EventKind::Store;
    }

    /** True for Store events. */
    bool isStore() const { return kind() == EventKind::Store; }

    /** Byte address of a Load/Store event. */
    uint64_t
    address() const
    {
        util::panicIf(!isMemRef(), "address() on a work event");
        return payload();
    }

    /**
     * Instruction count: the run length for Work, 1 for Load/Store,
     * 0 for Barrier (a marker, not an instruction).
     */
    uint64_t
    instructions() const
    {
        switch (kind()) {
          case EventKind::Work:
            return payload();
          case EventKind::Barrier:
            return 0;
          default:
            return 1;
        }
    }

    /** Barrier sequence number of a Barrier event. */
    uint64_t
    barrierIndex() const
    {
        util::panicIf(kind() != EventKind::Barrier,
                      "barrierIndex() on a non-barrier event");
        return payload();
    }

    /** Raw encoded value (for serialization). */
    uint64_t raw() const { return bits_; }

    /** Rebuild from a raw encoded value. */
    static TraceEvent
    fromRaw(uint64_t raw)
    {
        TraceEvent e;
        e.bits_ = raw;
        return e;
    }

    bool operator==(const TraceEvent &o) const { return bits_ == o.bits_; }

  private:
    TraceEvent(EventKind kind, uint64_t payload)
        : bits_((static_cast<uint64_t>(kind) << 62) | payload)
    {}

    uint64_t payload() const { return bits_ & maxPayload; }

    uint64_t bits_;
};

} // namespace tsp::trace

#endif // TSP_TRACE_EVENT_H
