/**
 * @file
 * A single thread's trace: an ordered event sequence plus cached counts,
 * and a cursor for efficient consumption by the simulator.
 */

#ifndef TSP_TRACE_THREAD_TRACE_H
#define TSP_TRACE_THREAD_TRACE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/event.h"

namespace tsp::trace {

/** Identifier of a thread within one application. */
using ThreadId = uint32_t;

/**
 * Ordered trace of one thread. Appending through the typed helpers keeps
 * adjacent work runs merged and count caches up to date.
 */
class ThreadTrace
{
  public:
    /** Construct an empty trace for thread @p id. */
    explicit ThreadTrace(ThreadId id = 0) : id_(id) {}

    /** Thread id within the application. */
    ThreadId id() const { return id_; }

    /** Append @p count instructions of non-memory work. */
    void appendWork(uint64_t count);

    /** Append a load of @p addr. */
    void appendLoad(uint64_t addr);

    /** Append a store of @p addr. */
    void appendStore(uint64_t addr);

    /**
     * Append a barrier marker. Barriers are numbered sequentially per
     * thread starting from 0.
     */
    void appendBarrier();

    /** Append a pre-built event (merging work runs where possible). */
    void append(TraceEvent e);

    /** Total instructions, counting work-run lengths. */
    uint64_t instructionCount() const { return instructions_; }

    /** Number of data references (loads + stores). */
    uint64_t memRefCount() const { return loads_ + stores_; }

    /** Number of load references. */
    uint64_t loadCount() const { return loads_; }

    /** Number of store references. */
    uint64_t storeCount() const { return stores_; }

    /** Number of barrier markers. */
    uint64_t barrierCount() const { return barriers_; }

    /** Underlying event storage. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** True when no events have been appended. */
    bool empty() const { return events_.empty(); }

    /** Reserve space for @p n events. */
    void reserve(size_t n) { events_.reserve(n); }

    bool operator==(const ThreadTrace &o) const
    {
        return id_ == o.id_ && events_ == o.events_;
    }

  private:
    ThreadId id_;
    std::vector<TraceEvent> events_;
    uint64_t instructions_ = 0;
    uint64_t loads_ = 0;
    uint64_t stores_ = 0;
    uint64_t barriers_ = 0;
};

/**
 * Sequential consumer of a ThreadTrace for the simulator: yields chunks
 * of (work-run, optional following data reference).
 */
class TraceCursor
{
  public:
    /** One consumption step. */
    struct Chunk
    {
        uint64_t work = 0;   //!< instructions before the reference
        bool hasRef = false; //!< whether a data reference follows
        bool isStore = false;
        bool isBarrier = false;  //!< chunk ends at a barrier instead
        uint64_t addr = 0;       //!< address, or barrier index

        /** Instructions consumed by this chunk. */
        uint64_t
        instructions() const
        {
            return work + (hasRef ? 1 : 0);
        }
    };

    /** Bind to @p tt, which must outlive the cursor. */
    explicit TraceCursor(const ThreadTrace &tt)
        : pos_(tt.events().data()),
          end_(tt.events().data() + tt.events().size())
    {
    }

    /** True when the whole trace has been consumed. */
    bool done() const { return pos_ == end_; }

    /**
     * Consume and return the next chunk: all leading work plus the next
     * data reference if one follows. A trailing chunk may have no ref.
     * Inline, over raw event pointers: this is the simulator's
     * per-reference fetch path (docs/performance.md).
     */
    Chunk
    next()
    {
        Chunk chunk;
        while (pos_ != end_) {
            const TraceEvent &e = *pos_;
            ++pos_;
            if (e.kind() == EventKind::Work) {
                chunk.work += e.instructions();
            } else if (e.kind() == EventKind::Barrier) {
                chunk.isBarrier = true;
                chunk.addr = e.barrierIndex();
                break;
            } else {
                chunk.hasRef = true;
                chunk.isStore = e.isStore();
                chunk.addr = e.address();
                break;
            }
        }
        return chunk;
    }

  private:
    const TraceEvent *pos_;
    const TraceEvent *end_;
};

} // namespace tsp::trace

#endif // TSP_TRACE_THREAD_TRACE_H
