/**
 * @file
 * A single thread's trace: an ordered event sequence plus cached counts,
 * and a cursor for efficient consumption by the simulator.
 */

#ifndef TSP_TRACE_THREAD_TRACE_H
#define TSP_TRACE_THREAD_TRACE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/event.h"

namespace tsp::trace {

/** Identifier of a thread within one application. */
using ThreadId = uint32_t;

/**
 * Ordered trace of one thread. Appending through the typed helpers keeps
 * adjacent work runs merged and count caches up to date.
 */
class ThreadTrace
{
  public:
    /** Construct an empty trace for thread @p id. */
    explicit ThreadTrace(ThreadId id = 0) : id_(id) {}

    /** Thread id within the application. */
    ThreadId id() const { return id_; }

    /** Append @p count instructions of non-memory work. */
    void appendWork(uint64_t count);

    /** Append a load of @p addr. */
    void appendLoad(uint64_t addr);

    /** Append a store of @p addr. */
    void appendStore(uint64_t addr);

    /**
     * Append a barrier marker. Barriers are numbered sequentially per
     * thread starting from 0.
     */
    void appendBarrier();

    /** Append a pre-built event (merging work runs where possible). */
    void append(TraceEvent e);

    /** Total instructions, counting work-run lengths. */
    uint64_t instructionCount() const { return instructions_; }

    /** Number of data references (loads + stores). */
    uint64_t memRefCount() const { return loads_ + stores_; }

    /** Number of load references. */
    uint64_t loadCount() const { return loads_; }

    /** Number of store references. */
    uint64_t storeCount() const { return stores_; }

    /** Number of barrier markers. */
    uint64_t barrierCount() const { return barriers_; }

    /** Underlying event storage. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** True when no events have been appended. */
    bool empty() const { return events_.empty(); }

    /** Reserve space for @p n events. */
    void reserve(size_t n) { events_.reserve(n); }

    /**
     * Release the append-path slack: generation reserves from length
     * estimates, so finished traces can carry sizeable unused capacity.
     * Called once per thread at the end of generateTraces; the saving
     * is visible in the trace.resident_bytes gauge
     * (docs/performance.md).
     */
    void shrinkToFit() { events_.shrink_to_fit(); }

    /** Bytes resident in the event storage (capacity, not size). */
    size_t
    residentBytes() const
    {
        return events_.capacity() * sizeof(TraceEvent);
    }

    /**
     * Move the buffered events onto the end of @p out and clear the
     * buffer, keeping the cached counters (they describe everything
     * appended so far, drained or not — the streaming composer's
     * budget arithmetic depends on that). Returns the events moved.
     *
     * A later appendWork cannot merge into a drained work run, so a
     * drained stream may split work runs differently from a
     * materialized trace of the same emission sequence. TraceCursor
     * re-accumulates split work runs, so consumers see the identical
     * chunk sequence either way (tests/trace_chunk_test.cc pins this).
     */
    size_t
    drainEventsTo(std::vector<TraceEvent> &out)
    {
        size_t n = events_.size();
        out.insert(out.end(), events_.begin(), events_.end());
        events_.clear();
        return n;
    }

    bool operator==(const ThreadTrace &o) const
    {
        return id_ == o.id_ && events_ == o.events_;
    }

  private:
    ThreadId id_;
    std::vector<TraceEvent> events_;
    uint64_t instructions_ = 0;
    uint64_t loads_ = 0;
    uint64_t stores_ = 0;
    uint64_t barriers_ = 0;
};

/**
 * Pull interface feeding a TraceCursor in chunked (streaming) mode:
 * successive bounded spans of one thread's events, produced on demand.
 * Each span stays valid until the following next() call on the same
 * feed. Returning false means end-of-trace; empty spans are allowed
 * (the cursor skips them) and a feed may be polled again after EOF.
 */
class ChunkFeed
{
  public:
    virtual ~ChunkFeed() = default;

    /** Next span; false at end of trace (outputs untouched). */
    virtual bool next(const TraceEvent **begin,
                      const TraceEvent **end) = 0;
};

/**
 * Sequential consumer of a ThreadTrace for the simulator: yields chunks
 * of (work-run, optional following data reference).
 *
 * Two modes share one implementation:
 *  - scalar: raw pointers over a materialized ThreadTrace (the hot
 *    path — the feed branch is never taken);
 *  - chunked: the same pointers walk bounded spans pulled from a
 *    ChunkFeed, refilled eagerly so done() stays an exact pointer
 *    compare and a work run split across a span boundary re-merges
 *    into one chunk (bit-identical consumption either way).
 */
class TraceCursor
{
  public:
    /** One consumption step. */
    struct Chunk
    {
        uint64_t work = 0;   //!< instructions before the reference
        bool hasRef = false; //!< whether a data reference follows
        bool isStore = false;
        bool isBarrier = false;  //!< chunk ends at a barrier instead
        uint64_t addr = 0;       //!< address, or barrier index

        /** Instructions consumed by this chunk. */
        uint64_t
        instructions() const
        {
            return work + (hasRef ? 1 : 0);
        }
    };

    /** Bind to @p tt, which must outlive the cursor. */
    explicit TraceCursor(const ThreadTrace &tt)
        : pos_(tt.events().data()),
          end_(tt.events().data() + tt.events().size())
    {
    }

    /**
     * Bind to @p feed (chunked mode), which must outlive the cursor.
     * Primes the first span eagerly, so done() is meaningful
     * immediately.
     */
    explicit TraceCursor(ChunkFeed &feed) : feed_(&feed) { refill(); }

    /**
     * True when the whole trace has been consumed. Exact in both
     * modes: chunked refills happen eagerly whenever consumption
     * empties the current span, so the span is non-empty until true
     * end-of-trace.
     */
    bool done() const { return pos_ == end_; }

    /**
     * Consume and return the next chunk: all leading work plus the next
     * data reference if one follows. A trailing chunk may have no ref.
     * Inline, over raw event pointers: this is the simulator's
     * per-reference fetch path (docs/performance.md). In chunked mode
     * a work run split across a span boundary keeps accumulating into
     * the same chunk, so consumers cannot observe where the producer
     * cut its spans.
     */
    Chunk
    next()
    {
        Chunk chunk;
        while (pos_ != end_) {
            const TraceEvent &e = *pos_;
            ++pos_;
            if (e.kind() == EventKind::Work) {
                chunk.work += e.instructions();
                if (pos_ == end_ && feed_ != nullptr)
                    refill();  // the run may continue in the next span
            } else if (e.kind() == EventKind::Barrier) {
                chunk.isBarrier = true;
                chunk.addr = e.barrierIndex();
                break;
            } else {
                chunk.hasRef = true;
                chunk.isStore = e.isStore();
                chunk.addr = e.address();
                break;
            }
        }
        if (pos_ == end_ && feed_ != nullptr)
            refill();  // keep done() exact after a terminating ref
        return chunk;
    }

  private:
    /**
     * Pull spans from the feed until one is non-empty; at end-of-trace
     * drop the feed so done() stays a plain pointer compare and EOF is
     * never re-polled.
     */
    void refill();

    const TraceEvent *pos_ = nullptr;
    const TraceEvent *end_ = nullptr;
    ChunkFeed *feed_ = nullptr;
};

} // namespace tsp::trace

#endif // TSP_TRACE_THREAD_TRACE_H
