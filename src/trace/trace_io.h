/**
 * @file
 * Binary serialization for trace sets, so generated workloads can be
 * saved once and replayed across experiments (the trace-driven workflow
 * of the paper, with our generator standing in for MPtrace).
 */

#ifndef TSP_TRACE_TRACE_IO_H
#define TSP_TRACE_TRACE_IO_H

#include <iosfwd>
#include <string>

#include "trace/trace_set.h"

namespace tsp::trace {

/** Write @p set to @p os in the TSPT binary format. */
void saveBinary(const TraceSet &set, std::ostream &os);

/** Read a trace set in the TSPT binary format from @p is. */
TraceSet loadBinary(std::istream &is);

/** Save to a file path; throws FatalError on IO failure. */
void saveFile(const TraceSet &set, const std::string &path);

/** Load from a file path; throws FatalError on IO failure. */
TraceSet loadFile(const std::string &path);

} // namespace tsp::trace

#endif // TSP_TRACE_TRACE_IO_H
