#include "trace/trace_set.h"

#include "util/error.h"
#include "util/flat_map.h"

namespace tsp::trace {

void
TraceSet::addThread(ThreadTrace tt)
{
    util::fatalIf(tt.id() != threads_.size(),
                  "thread trace ids must be dense and in order");
    threads_.push_back(std::move(tt));
}

uint64_t
TraceSet::totalInstructions() const
{
    uint64_t sum = 0;
    for (const auto &t : threads_)
        sum += t.instructionCount();
    return sum;
}

uint64_t
TraceSet::totalMemRefs() const
{
    uint64_t sum = 0;
    for (const auto &t : threads_)
        sum += t.memRefCount();
    return sum;
}

std::vector<uint64_t>
TraceSet::threadLengths() const
{
    std::vector<uint64_t> lengths;
    lengths.reserve(threads_.size());
    for (const auto &t : threads_)
        lengths.push_back(t.instructionCount());
    return lengths;
}

const TraceSet::TouchedBlocks &
TraceSet::touchedBlocks(unsigned blockShift) const
{
    std::shared_ptr<TouchedMemo> memo = touched_;
    std::lock_guard<std::mutex> lock(memo->mutex);
    auto it = memo->byShift.find(blockShift);
    if (it != memo->byShift.end())
        return it->second;

    TouchedBlocks census;
    census.perThread.reserve(threads_.size());
    util::FlatMap<uint64_t, uint8_t> global;
    util::FlatMap<uint64_t, uint8_t> local;
    for (const auto &t : threads_) {
        local.clear();
        local.reserve(t.memRefCount() < 4096 ? t.memRefCount() : 4096);
        for (const TraceEvent &e : t.events()) {
            EventKind kind = e.kind();
            if (kind != EventKind::Load && kind != EventKind::Store)
                continue;
            uint64_t block = e.address() >> blockShift;
            local.tryEmplace(block);
            global.tryEmplace(block);
        }
        census.perThread.push_back(local.size());
    }
    census.total = global.size();
    return memo->byShift.emplace(blockShift, std::move(census))
        .first->second;
}

} // namespace tsp::trace
