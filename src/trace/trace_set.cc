#include "trace/trace_set.h"

#include "util/error.h"

namespace tsp::trace {

void
TraceSet::addThread(ThreadTrace tt)
{
    util::fatalIf(tt.id() != threads_.size(),
                  "thread trace ids must be dense and in order");
    threads_.push_back(std::move(tt));
}

uint64_t
TraceSet::totalInstructions() const
{
    uint64_t sum = 0;
    for (const auto &t : threads_)
        sum += t.instructionCount();
    return sum;
}

uint64_t
TraceSet::totalMemRefs() const
{
    uint64_t sum = 0;
    for (const auto &t : threads_)
        sum += t.memRefCount();
    return sum;
}

std::vector<uint64_t>
TraceSet::threadLengths() const
{
    std::vector<uint64_t> lengths;
    lengths.reserve(threads_.size());
    for (const auto &t : threads_)
        lengths.push_back(t.instructionCount());
    return lengths;
}

} // namespace tsp::trace
