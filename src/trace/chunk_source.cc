#include "trace/chunk_source.h"

#include <algorithm>

#include "fault/fault.h"
#include "obs/metric_defs.h"
#include "util/error.h"
#include "util/flat_map.h"

namespace tsp::trace {

SharedTraceStream::SharedTraceStream(StreamFactory &factory,
                                     uint32_t lanes, size_t chunkEvents)
    : factory_(factory),
      laneCount_(lanes),
      chunkEvents_(chunkEvents)
{
    util::fatalIf(lanes == 0, "a trace stream needs >= 1 lane");
    util::fatalIf(chunkEvents == 0, "chunk size must be >= 1 event");
    uint32_t threads = factory_.threadCount();
    util::fatalIf(threads == 0, "a trace stream needs >= 1 thread");

    retired_.assign(lanes, 0);
    windows_.resize(threads);
    for (ThreadWindow &w : windows_) {
        w.producer = nullptr;  // opened lazily on first pull
        w.laneNext.assign(lanes, 0);
    }

    // Pre-build every lane view and feed: lane() and openThread()
    // return references into these vectors, so they are sized once
    // here and never resized again.
    laneSources_.reserve(lanes);
    feeds_.reserve(static_cast<size_t>(lanes) * threads);
    for (uint32_t lane = 0; lane < lanes; ++lane) {
        laneSources_.emplace_back(*this, lane);
        for (ThreadId tid = 0; tid < threads; ++tid)
            feeds_.emplace_back(*this, lane, tid);
    }
}

TraceSource &
SharedTraceStream::lane(uint32_t lane)
{
    util::fatalIf(lane >= laneCount_, "lane index out of range");
    return laneSources_[lane];
}

ChunkFeed &
SharedTraceStream::LaneSource::openThread(ThreadId tid)
{
    util::fatalIf(tid >= owner_->windows_.size(),
                  "thread id out of range");
    size_t threads = owner_->windows_.size();
    return owner_->feeds_[static_cast<size_t>(lane_) * threads + tid];
}

bool
SharedTraceStream::feedNext(uint32_t lane, ThreadId tid,
                            const TraceEvent **begin,
                            const TraceEvent **end)
{
    ThreadWindow &w = windows_[tid];
    size_t idx = w.laneNext[lane];
    if (idx == w.hiIdx && !refill(w, tid))
        return false;
    const std::vector<TraceEvent> &chunk = w.chunks[idx - w.loIdx];
    *begin = chunk.data();
    *end = chunk.data() + chunk.size();
    w.laneNext[lane] = idx + 1;
    trim(w);
    return true;
}

bool
SharedTraceStream::refill(ThreadWindow &w, ThreadId tid)
{
    if (w.eof)
        return false;

    // Before any state changes: a refill fault leaves the window
    // consistent, so sibling lanes (and a retried pull) proceed
    // normally after the throwing lane is failed.
    TSP_FAULT_POINT("trace.chunk_refill");

    if (w.producer == nullptr)
        w.producer = factory_.openProducer(tid);

    std::vector<TraceEvent> chunk;
    chunk.reserve(chunkEvents_);
    while (chunk.size() < chunkEvents_ && w.producer->produce(chunk)) {
    }
    if (chunk.empty()) {
        w.eof = true;
        w.producer.reset();
        return false;
    }

    windowEventsNow_ += chunk.size();
    windowEventsHighWater_ =
        std::max(windowEventsHighWater_, windowEventsNow_);
    w.chunks.push_back(std::move(chunk));
    ++w.hiIdx;
    ++refills_;
    obs::traceChunkRefills().inc();
    obs::traceWindowEvents().set(
        static_cast<int64_t>(windowEventsNow_));
    return true;
}

void
SharedTraceStream::trim(ThreadWindow &w)
{
    size_t minNext = SIZE_MAX;
    for (uint32_t lane = 0; lane < laneCount_; ++lane) {
        if (!retired_[lane])
            minNext = std::min(minNext, w.laneNext[lane]);
    }
    if (minNext == SIZE_MAX) {
        // Every lane retired: nothing can be read again.
        while (!w.chunks.empty()) {
            windowEventsNow_ -= w.chunks.front().size();
            w.chunks.pop_front();
            ++w.loIdx;
        }
        return;
    }
    // A lane whose next index is m may still be consuming chunk m - 1,
    // so only chunks below minNext - 1 are certainly dead.
    while (minNext >= 1 && w.loIdx < minNext - 1) {
        windowEventsNow_ -= w.chunks.front().size();
        w.chunks.pop_front();
        ++w.loIdx;
    }
}

void
SharedTraceStream::retireLane(uint32_t lane)
{
    util::fatalIf(lane >= laneCount_, "lane index out of range");
    if (retired_[lane])
        return;
    retired_[lane] = 1;
    for (ThreadWindow &w : windows_)
        trim(w);
}

const TraceSet::TouchedBlocks &
SharedTraceStream::touchedBlocks(unsigned blockShift)
{
    auto it = census_.find(blockShift);
    if (it != census_.end())
        return it->second;

    // Dedicated producer pass per thread (openProducer replays
    // deterministically, so this sees exactly the simulated events);
    // same counting scheme as TraceSet::touchedBlocks.
    TraceSet::TouchedBlocks census;
    uint32_t threads = factory_.threadCount();
    census.perThread.reserve(threads);
    util::FlatMap<uint64_t, uint8_t> global;
    util::FlatMap<uint64_t, uint8_t> local;
    std::vector<TraceEvent> buf;
    for (ThreadId tid = 0; tid < threads; ++tid) {
        local.clear();
        local.reserve(4096);
        std::unique_ptr<ChunkProducer> producer =
            factory_.openProducer(tid);
        for (;;) {
            buf.clear();
            if (!producer->produce(buf))
                break;
            for (const TraceEvent &e : buf) {
                EventKind kind = e.kind();
                if (kind != EventKind::Load && kind != EventKind::Store)
                    continue;
                uint64_t block = e.address() >> blockShift;
                local.tryEmplace(block);
                global.tryEmplace(block);
            }
        }
        census.perThread.push_back(local.size());
    }
    census.total = global.size();
    return census_.emplace(blockShift, std::move(census))
        .first->second;
}

} // namespace tsp::trace
