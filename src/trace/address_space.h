/**
 * @file
 * Address-space layout conventions for generated traces.
 *
 * The MPtrace-era applications distinguish a shared heap from per-thread
 * private data. We reproduce that with a fixed layout: a shared region
 * at a known base and disjoint per-thread private regions above it.
 * The analyzer does NOT rely on this layout (it derives sharing from the
 * traces themselves); the layout only guarantees generated private data
 * never aliases shared data.
 */

#ifndef TSP_TRACE_ADDRESS_SPACE_H
#define TSP_TRACE_ADDRESS_SPACE_H

#include <cstdint>

namespace tsp::trace {

/** Fixed layout used by the synthetic workload generators. */
struct AddressSpace
{
    /** Machine word size in bytes; all references are word aligned. */
    static constexpr uint64_t wordBytes = 4;

    /** Base byte address of the shared region. */
    static constexpr uint64_t sharedBase = 0x1000'0000ull;

    /** Size in bytes reserved for the shared region. */
    static constexpr uint64_t sharedSpan = 0x1000'0000ull;  // 256 MB

    /**
     * Size in bytes reserved per private region. Deliberately NOT a
     * multiple of any simulated cache size: 16 MB + 64 KB + 64 B, so
     * consecutive threads' private pools land on different cache
     * indices. In the 8 MB "infinite" cache (Section 4.3) this gives
     * every thread a disjoint ~64 KB index window, which (together
     * with the 1 MB offset below clearing the shared region's indices)
     * is what lets an 8 MB cache eliminate conflict misses entirely,
     * as the paper requires.
     */
    static constexpr uint64_t privateSpan = 0x0101'0040ull;

    /** Gap between the shared region and the first private region. */
    static constexpr uint64_t privateAreaOffset = 0x0010'0000ull;

    /** Base of thread @p tid's private region. */
    static constexpr uint64_t
    privateBase(uint32_t tid)
    {
        return sharedBase + sharedSpan + privateAreaOffset +
               static_cast<uint64_t>(tid) * privateSpan;
    }

    /** True when @p addr lies in the shared region. */
    static constexpr bool
    isShared(uint64_t addr)
    {
        return addr >= sharedBase && addr < sharedBase + sharedSpan;
    }

    /** Word index -> byte address within the shared region. */
    static constexpr uint64_t
    sharedWord(uint64_t index)
    {
        return sharedBase + index * wordBytes;
    }

    /** Word index -> byte address within thread @p tid's private region. */
    static constexpr uint64_t
    privateWord(uint32_t tid, uint64_t index)
    {
        return privateBase(tid) + index * wordBytes;
    }
};

} // namespace tsp::trace

#endif // TSP_TRACE_ADDRESS_SPACE_H
