#include "trace/thread_trace.h"

namespace tsp::trace {

void
ThreadTrace::appendWork(uint64_t count)
{
    if (count == 0)
        return;
    instructions_ += count;
    if (!events_.empty() &&
        events_.back().kind() == EventKind::Work) {
        uint64_t merged = events_.back().instructions() + count;
        if (merged <= TraceEvent::maxPayload) {
            events_.back() = TraceEvent::work(merged);
            return;
        }
    }
    events_.push_back(TraceEvent::work(count));
}

void
ThreadTrace::appendLoad(uint64_t addr)
{
    events_.push_back(TraceEvent::load(addr));
    ++instructions_;
    ++loads_;
}

void
ThreadTrace::appendStore(uint64_t addr)
{
    events_.push_back(TraceEvent::store(addr));
    ++instructions_;
    ++stores_;
}

void
ThreadTrace::appendBarrier()
{
    events_.push_back(TraceEvent::barrier(barriers_));
    ++barriers_;
}

void
ThreadTrace::append(TraceEvent e)
{
    switch (e.kind()) {
      case EventKind::Work:
        appendWork(e.instructions());
        break;
      case EventKind::Load:
        appendLoad(e.address());
        break;
      case EventKind::Store:
        appendStore(e.address());
        break;
      case EventKind::Barrier:
        appendBarrier();
        break;
    }
}


void
TraceCursor::refill()
{
    const TraceEvent *begin = nullptr;
    const TraceEvent *end = nullptr;
    while (feed_->next(&begin, &end)) {
        if (begin != end) {
            pos_ = begin;
            end_ = end;
            return;
        }
    }
    feed_ = nullptr;
    pos_ = end_ = nullptr;
}

} // namespace tsp::trace
