/**
 * @file
 * An application's complete trace: one ThreadTrace per thread, plus
 * application metadata.
 */

#ifndef TSP_TRACE_TRACE_SET_H
#define TSP_TRACE_TRACE_SET_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/thread_trace.h"

namespace tsp::trace {

/**
 * All per-thread traces of one application run, in thread-id order.
 */
class TraceSet
{
  public:
    /** Construct an empty set for application @p name. */
    explicit TraceSet(std::string name = "") : name_(std::move(name)) {}

    /** Application name. */
    const std::string &name() const { return name_; }

    /** Set the application name. */
    void setName(std::string name) { name_ = std::move(name); }

    /** Number of threads. */
    size_t threadCount() const { return threads_.size(); }

    /** Append a thread trace; its id must equal its position. */
    void addThread(ThreadTrace tt);

    /** Thread trace by id. */
    const ThreadTrace &thread(ThreadId id) const { return threads_.at(id); }

    /** Mutable thread trace by id. */
    ThreadTrace &thread(ThreadId id) { return threads_.at(id); }

    /** All threads in id order. */
    const std::vector<ThreadTrace> &threads() const { return threads_; }

    /** Sum of instruction counts over all threads. */
    uint64_t totalInstructions() const;

    /** Sum of data references over all threads. */
    uint64_t totalMemRefs() const;

    /** Per-thread instruction counts in thread-id order. */
    std::vector<uint64_t> threadLengths() const;

  private:
    std::string name_;
    std::vector<ThreadTrace> threads_;
};

} // namespace tsp::trace

#endif // TSP_TRACE_TRACE_SET_H
