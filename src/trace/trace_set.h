/**
 * @file
 * An application's complete trace: one ThreadTrace per thread, plus
 * application metadata.
 */

#ifndef TSP_TRACE_TRACE_SET_H
#define TSP_TRACE_TRACE_SET_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/thread_trace.h"

namespace tsp::trace {

/**
 * All per-thread traces of one application run, in thread-id order.
 */
class TraceSet
{
  public:
    /** Construct an empty set for application @p name. */
    explicit TraceSet(std::string name = "") : name_(std::move(name)) {}

    /** Application name. */
    const std::string &name() const { return name_; }

    /** Set the application name. */
    void setName(std::string name) { name_ = std::move(name); }

    /** Number of threads. */
    size_t threadCount() const { return threads_.size(); }

    /** Append a thread trace; its id must equal its position. */
    void addThread(ThreadTrace tt);

    /** Thread trace by id. */
    const ThreadTrace &thread(ThreadId id) const { return threads_.at(id); }

    /** Mutable thread trace by id (invalidates the touched memo). */
    ThreadTrace &
    thread(ThreadId id)
    {
        invalidateTouched();
        return threads_.at(id);
    }

    /** All threads in id order. */
    const std::vector<ThreadTrace> &threads() const { return threads_; }

    /** Sum of instruction counts over all threads. */
    uint64_t totalInstructions() const;

    /** Sum of data references over all threads. */
    uint64_t totalMemRefs() const;

    /** Per-thread instruction counts in thread-id order. */
    std::vector<uint64_t> threadLengths() const;

    /**
     * Distinct cache blocks referenced at a given block granularity:
     * the union over every thread plus per-thread counts. The Machine
     * uses these to pre-size its directory and per-cache history
     * tables so the simulate loop never rehashes.
     */
    struct TouchedBlocks
    {
        uint64_t total = 0;               //!< distinct across all threads
        std::vector<uint64_t> perThread;  //!< distinct per thread
    };

    /**
     * The touched-block census for @p blockShift (block = addr >>
     * blockShift). One pass over the events on first call; memoized
     * per shift thereafter, so sweeps re-running the same traces pay
     * the census once. Thread-safe against concurrent readers; the
     * memo resets whenever a thread trace is added or mutably
     * accessed. The returned reference stays valid until then.
     */
    const TouchedBlocks &touchedBlocks(unsigned blockShift) const;

  private:
    /** Shift-keyed census memo, shared by copies until invalidated. */
    struct TouchedMemo
    {
        std::mutex mutex;
        std::map<unsigned, TouchedBlocks> byShift;
    };

    /** Give this set a fresh memo (on any mutation). */
    void
    invalidateTouched()
    {
        touched_ = std::make_shared<TouchedMemo>();
    }

    std::string name_;
    std::vector<ThreadTrace> threads_;
    std::shared_ptr<TouchedMemo> touched_ =
        std::make_shared<TouchedMemo>();
};

} // namespace tsp::trace

#endif // TSP_TRACE_TRACE_SET_H
