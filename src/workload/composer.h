/**
 * @file
 * TraceComposer: low-level emission helper that turns a pattern's
 * shared-reference stream into a full thread trace, interleaving the
 * private references and non-memory work needed to hit the profile's
 * instruction/reference and shared/private ratios.
 */

#ifndef TSP_WORKLOAD_COMPOSER_H
#define TSP_WORKLOAD_COMPOSER_H

#include <cstdint>

#include "trace/thread_trace.h"
#include "util/rng.h"

namespace tsp::workload {

/**
 * Builds one thread's trace. Pattern code calls sharedRef() for each
 * shared access it wants, in order; the composer transparently weaves
 * in private references (with spatial locality over the thread's
 * private pool) and work instructions so that the final trace matches
 * the target ratios, then finish() pads the trace to the exact thread
 * length.
 */
class TraceComposer
{
  public:
    /** Ratio and pool parameters for one thread. */
    struct Params
    {
        uint64_t targetLength;      //!< exact instruction count to emit
        double dataRefFrac;         //!< data refs per instruction
        double sharedRefFrac;       //!< shared refs per data ref
        double writeFrac;           //!< writes per *private* data ref
        uint64_t privatePoolBase;   //!< first byte of the private pool
        uint64_t privatePoolWords;  //!< pool size in words
    };

    /** @param tid thread id; @param rng private stream for this thread */
    TraceComposer(trace::ThreadId tid, const Params &params,
                  util::Rng rng);

    /**
     * Emit one shared reference (plus owed private refs and work).
     * Returns false once the instruction budget is exhausted; callers
     * should stop issuing shared references then.
     */
    bool sharedRef(uint64_t addr, bool isWrite);

    /** Shared references emitted so far. */
    uint64_t sharedRefsEmitted() const { return sharedRefs_; }

    /**
     * Emit a barrier marker (always appended, even once the
     * instruction budget is exhausted: all threads must execute the
     * same barrier sequence).
     */
    void barrier();

    /** Instructions emitted so far. */
    uint64_t
    instructionsEmitted() const
    {
        return trace_.instructionCount();
    }

    /**
     * Pad with private references and work to exactly the target
     * length and return the finished trace. The composer must not be
     * used afterwards. Exactly: while (padStep()) {} + takeTrace().
     */
    trace::ThreadTrace finish();

    /**
     * One step of the finish() padding: emit one private reference at
     * the usual data-reference density, or the final pure-work run.
     * Returns false once padding is complete (idempotent thereafter).
     * Streaming emission interleaves these with drains.
     */
    bool padStep();

    /**
     * Move buffered events to @p out, keeping the composer's budget
     * counters intact (they live in the ThreadTrace's count caches,
     * which draining preserves — see ThreadTrace::drainEventsTo).
     */
    size_t
    drainEventsTo(std::vector<trace::TraceEvent> &out)
    {
        return trace_.drainEventsTo(out);
    }

    /** Take the (possibly drained) trace after padding completed. */
    trace::ThreadTrace takeTrace() { return std::move(trace_); }

  private:
    /** Emit one private reference with pool locality. */
    void privateRef();

    /** Emit the work instructions owed per data reference. */
    void workForRef();

    /** Remaining instruction budget. */
    uint64_t
    remaining() const
    {
        uint64_t used = trace_.instructionCount();
        return used >= params_.targetLength
            ? 0
            : params_.targetLength - used;
    }

    Params params_;
    util::Rng rng_;
    trace::ThreadTrace trace_;

    uint64_t sharedRefs_ = 0;
    double privOwed_ = 0.0;  //!< fractional private refs owed
    double workOwed_ = 0.0;  //!< fractional work instructions owed
    double privPerShared_;
    double workPerRef_;
    uint64_t scanPos_ = 0;   //!< private-pool sequential scan cursor
};

} // namespace tsp::workload

#endif // TSP_WORKLOAD_COMPOSER_H
