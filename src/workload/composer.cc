#include "workload/composer.h"

#include <algorithm>

#include "trace/address_space.h"
#include "util/error.h"

namespace tsp::workload {

TraceComposer::TraceComposer(trace::ThreadId tid, const Params &params,
                             util::Rng rng)
    : params_(params), rng_(rng), trace_(tid)
{
    util::fatalIf(params.dataRefFrac <= 0.0 || params.dataRefFrac > 1.0,
                  "dataRefFrac must be in (0, 1]");
    util::fatalIf(params.sharedRefFrac < 0.0 ||
                      params.sharedRefFrac > 1.0,
                  "sharedRefFrac must be in [0, 1]");
    util::fatalIf(params.privatePoolWords == 0,
                  "private pool must be non-empty");
    privPerShared_ = params.sharedRefFrac > 0.0
        ? (1.0 - params.sharedRefFrac) / params.sharedRefFrac
        : 0.0;
    workPerRef_ = (1.0 - params.dataRefFrac) / params.dataRefFrac;
}

void
TraceComposer::workForRef()
{
    workOwed_ += workPerRef_;
    uint64_t whole = static_cast<uint64_t>(workOwed_);
    if (whole > 0 && remaining() > 0) {
        uint64_t emit = std::min(whole, remaining());
        trace_.appendWork(emit);
        workOwed_ -= static_cast<double>(whole);
    } else {
        workOwed_ -= static_cast<double>(whole);
    }
}

void
TraceComposer::privateRef()
{
    if (remaining() == 0)
        return;
    // Spatial locality: mostly sequential scanning over the pool with
    // occasional random jumps, so consecutive words in a cache block
    // hit after the block is fetched.
    if (rng_.bernoulli(0.25))
        scanPos_ = rng_.nextBelow(params_.privatePoolWords);
    else
        scanPos_ = (scanPos_ + 1) % params_.privatePoolWords;
    uint64_t addr = params_.privatePoolBase +
                    scanPos_ * trace::AddressSpace::wordBytes;
    if (rng_.bernoulli(params_.writeFrac))
        trace_.appendStore(addr);
    else
        trace_.appendLoad(addr);
    workForRef();
}

bool
TraceComposer::sharedRef(uint64_t addr, bool isWrite)
{
    if (remaining() == 0)
        return false;
    // Pay down private references owed for ratio balance first, so the
    // shared stream stays interleaved with private work.
    privOwed_ += privPerShared_;
    while (privOwed_ >= 1.0 && remaining() > 0) {
        privateRef();
        privOwed_ -= 1.0;
    }
    if (remaining() == 0)
        return false;
    if (isWrite)
        trace_.appendStore(addr);
    else
        trace_.appendLoad(addr);
    ++sharedRefs_;
    workForRef();
    return remaining() > 0;
}

void
TraceComposer::barrier()
{
    trace_.appendBarrier();
}

bool
TraceComposer::padStep()
{
    // Consume the remaining budget with private references at the
    // usual data-reference density, then one final pure-work run.
    if (remaining() == 0)
        return false;
    double refsLeft = static_cast<double>(remaining()) *
                      params_.dataRefFrac;
    if (refsLeft >= 1.0) {
        privateRef();
        return true;
    }
    trace_.appendWork(remaining());
    return false;
}

trace::ThreadTrace
TraceComposer::finish()
{
    while (padStep()) {
    }
    return takeTrace();
}

} // namespace tsp::workload
