/**
 * @file
 * Generator validation: checks that a generated trace set actually
 * exhibits the characteristics its profile targets, using the same
 * static analyzer the placement algorithms use. Consumed by the test
 * suite and by the Table 2 benchmark's self-check.
 */

#ifndef TSP_WORKLOAD_VALIDATE_H
#define TSP_WORKLOAD_VALIDATE_H

#include <string>
#include <vector>

#include "analysis/characteristics.h"
#include "trace/trace_set.h"
#include "workload/app_profile.h"

namespace tsp::workload {

/** One target/achieved comparison. */
struct ValidationItem
{
    std::string metric;
    double target = 0.0;
    double achieved = 0.0;
    double tolerancePct = 0.0;  //!< allowed |achieved-target|/target
    bool ok = false;
};

/** Result of validating one generated trace set. */
struct ValidationReport
{
    std::string app;
    std::vector<ValidationItem> items;

    /** True when every item is within tolerance. */
    bool allOk() const;

    /** Multi-line human-readable rendering. */
    std::string render() const;
};

/**
 * Validate @p traces against @p profile at 1/@p scale. Checks thread
 * count, mean thread length, shared-reference percentage and
 * references per shared address; thread-length deviation is checked
 * loosely (sampling noise at small thread counts is large).
 */
ValidationReport validateTraces(const AppProfile &profile,
                                const trace::TraceSet &traces,
                                uint32_t scale);

} // namespace tsp::workload

#endif // TSP_WORKLOAD_VALIDATE_H
