#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "trace/address_space.h"
#include "util/bits.h"
#include "util/error.h"
#include "workload/composer.h"

namespace tsp::workload {

using trace::AddressSpace;

namespace {

/** Sweep window in words (8 blocks of 32 B at 4 B words). */
constexpr uint64_t kWindowWords = 64;

/** Validate profile invariants shared by all entry points. */
void
checkProfile(const AppProfile &p, uint32_t scale)
{
    util::fatalIf(p.threads == 0, "profile needs >= 1 thread");
    util::fatalIf(!util::isPow2(scale), "scale must be a power of two");
    util::fatalIf(p.phases == 0, "profile needs >= 1 phase");
    double mix = p.globalFrac + p.neighborFrac + p.mailboxFrac +
                 p.sliceFrac;
    util::fatalIf(std::fabs(mix - 1.0) > 1e-6,
                  "sharing mixture fractions must sum to 1");
    util::fatalIf(p.refsPerSharedAddr < 1.0,
                  "refsPerSharedAddr must be >= 1");
}

/** Mean shared references per thread at this scale. */
double
meanSharedRefs(const AppProfile &p, uint32_t scale)
{
    return static_cast<double>(p.meanLength) / scale * p.dataRefFrac *
           p.sharedRefFrac;
}

} // namespace

uint64_t
SharedLayout::totalWords() const
{
    return slicesBase + static_cast<uint64_t>(threads) * sliceStride;
}

uint64_t
SharedLayout::globalAddr(uint64_t word) const
{
    return AddressSpace::sharedWord(globalBase + word);
}

uint64_t
SharedLayout::edgeAddr(uint32_t edge, uint64_t word) const
{
    return AddressSpace::sharedWord(edgesBase + edge * edgeStride +
                                    word);
}

uint64_t
SharedLayout::mailboxAddr(uint32_t from, uint32_t to,
                          uint64_t word) const
{
    uint64_t box = static_cast<uint64_t>(from) * threads + to;
    return AddressSpace::sharedWord(mailboxBase + box * mailboxStride +
                                    word);
}

uint64_t
SharedLayout::sliceAddr(uint32_t owner, uint64_t word) const
{
    return AddressSpace::sharedWord(slicesBase + owner * sliceStride +
                                    word);
}

SharedLayout
computeLayout(const AppProfile &p, uint32_t scale)
{
    checkProfile(p, scale);
    SharedLayout layout;
    layout.threads = p.threads;
    layout.phases = p.phases;

    const double sBar = meanSharedRefs(p, scale);
    const double r = p.refsPerSharedAddr;

    // Pool sizes follow from budget / refs-per-address; see generator.h.
    // Floors are kept as small as the mechanics allow so that
    // references-per-address targets survive even at high scale
    // divisors: the global pool needs one word per rotating section,
    // the other pools degenerate gracefully to single words.
    if (p.globalFrac > 0.0) {
        layout.globalWords = std::max<uint64_t>(
            p.phases, static_cast<uint64_t>(
                          std::llround(sBar * p.globalFrac / r)));
    }

    if (p.neighborFrac > 0.0) {
        layout.edgeWords = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   std::llround(sBar * p.neighborFrac / 2.0 / r)));
    }

    if (p.mailboxFrac > 0.0) {
        double perRun = sBar * p.mailboxFrac /
                        (2.0 * static_cast<double>(p.phases));
        layout.mailboxWords = std::max<uint64_t>(
            1, static_cast<uint64_t>(std::llround(perRun / r)));
    }

    if (p.sliceFrac > 0.0) {
        // Each slice is written by its owner and read by two
        // neighbors, so a thread touches 3 * sliceWords slice words;
        // sizing by 3r keeps references per address near the target.
        layout.sliceWords = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   std::llround(sBar * p.sliceFrac / (3.0 * r))));
    }

    // Strides: packed, or rounded up to a 32-byte block (8 words) so
    // no block straddles two pools (footnote 1's restructuring).
    constexpr uint64_t kBlockWords = 8;
    auto stride = [&](uint64_t words) {
        if (words == 0)
            return words;
        return p.alignSharedPools ? util::alignUp(words, kBlockWords)
                                  : words;
    };
    layout.edgeStride = stride(layout.edgeWords);
    layout.mailboxStride = stride(layout.mailboxWords);
    layout.sliceStride = stride(layout.sliceWords);

    layout.globalBase = 0;
    layout.edgesBase = stride(layout.globalBase + layout.globalWords);
    layout.mailboxBase = stride(
        layout.edgesBase +
        static_cast<uint64_t>(p.threads) * layout.edgeStride);
    layout.slicesBase = stride(
        layout.mailboxBase +
        static_cast<uint64_t>(p.threads) * p.threads *
            layout.mailboxStride);

    util::fatalIf(layout.totalWords() * AddressSpace::wordBytes >
                      AddressSpace::sharedSpan,
                  "shared layout exceeds the shared region");
    return layout;
}

std::vector<uint64_t>
sampleThreadLengths(const AppProfile &p, uint32_t scale)
{
    checkProfile(p, scale);
    util::Rng rng(p.seed * 0x9E3779B97F4A7C15ull + 1);
    const double mean = static_cast<double>(p.meanLength) /
                        static_cast<double>(scale);
    const double dev = mean * p.lengthDevPct / 100.0;
    constexpr double kMinLength = 500.0;

    std::vector<uint64_t> lengths(p.threads);
    if (p.lengthDevPct <= 0.0) {
        std::fill(lengths.begin(), lengths.end(),
                  static_cast<uint64_t>(mean));
        return lengths;
    }
    double sum = 0.0;
    std::vector<double> raw(p.threads);
    for (auto &x : raw) {
        x = std::max(kMinLength, rng.lognormalMeanDev(mean, dev));
        sum += x;
    }
    // Pin the sample mean to the target so scaled experiments stay
    // comparable; the CV is whatever the (deterministic) sample gave.
    double correction = mean * static_cast<double>(p.threads) / sum;
    for (uint32_t i = 0; i < p.threads; ++i) {
        lengths[i] = static_cast<uint64_t>(
            std::max(kMinLength, raw[i] * correction));
    }
    return lengths;
}

namespace {

/**
 * Per-thread emission machinery for one generated application.
 */
class ThreadEmitter
{
  public:
    ThreadEmitter(const AppProfile &p, const SharedLayout &layout,
                  uint32_t tid, uint64_t length, util::Rng rng)
        : p_(p), layout_(layout), tid_(tid), rng_(rng),
          composer_(tid, makeParams(p, tid, length, layout), rng.fork())
    {
        sharedBudget_ = static_cast<uint64_t>(
            static_cast<double>(length) * p.dataRefFrac *
            p.sharedRefFrac);
    }

    /** Run all phases and return the finished trace. */
    trace::ThreadTrace
    emit()
    {
        const uint32_t phases = p_.phases;
        uint64_t gBudget = component(p_.globalFrac);
        uint64_t nBudget = component(p_.neighborFrac);
        uint64_t mBudget = component(p_.mailboxFrac);
        uint64_t sBudget = component(p_.sliceFrac);
        for (uint32_t k = 0; k < phases; ++k) {
            if (alive_) {
                uint64_t g = phaseShare(gBudget, k, phases);
                uint64_t n = phaseShare(nBudget, k, phases);
                uint64_t m = phaseShare(mBudget, k, phases);
                uint64_t s = phaseShare(sBudget, k, phases);
                emitSliceReads(s / 3 * 2);
                emitEdgeSweep(edgeOf(tid_), k, n / 2,
                              /*lowEnd=*/false);
                emitGlobalSweep(k, g);
                emitEdgeSweep(edgeOf(tid_ + 1), k, n - n / 2,
                              /*lowEnd=*/true);
                emitMailboxRuns(k, m);
                emitSliceWrite(s - s / 3 * 2);
            }
            // Every thread emits the same barrier sequence regardless
            // of how much of its budget survived.
            if (p_.barriers && k + 1 < phases)
                composer_.barrier();
        }
        return composer_.finish();
    }

  private:
    static TraceComposer::Params
    makeParams(const AppProfile &p, uint32_t tid, uint64_t length,
               const SharedLayout &layout)
    {
        (void)layout;
        double privateRefs = static_cast<double>(length) *
                             p.dataRefFrac * (1.0 - p.sharedRefFrac);
        uint64_t poolWords = std::max<uint64_t>(
            16, static_cast<uint64_t>(privateRefs /
                                      p.refsPerPrivateAddr));
        TraceComposer::Params params;
        params.targetLength = length;
        params.dataRefFrac = p.dataRefFrac;
        params.sharedRefFrac = p.sharedRefFrac;
        params.writeFrac = p.writeFrac;
        params.privatePoolBase = AddressSpace::privateBase(tid);
        params.privatePoolWords = poolWords;
        util::fatalIf(poolWords * AddressSpace::wordBytes >
                          AddressSpace::privateSpan,
                      "private pool exceeds the private region");
        return params;
    }

    uint64_t
    component(double frac) const
    {
        return static_cast<uint64_t>(static_cast<double>(sharedBudget_) *
                                     frac);
    }

    static uint64_t
    phaseShare(uint64_t total, uint32_t k, uint32_t phases)
    {
        uint64_t base = total / phases;
        return k + 1 == phases ? total - base * (phases - 1) : base;
    }

    uint32_t edgeOf(uint32_t i) const { return i % p_.threads; }

    /** Emit one shared reference; tracks composer exhaustion. */
    void
    ref(uint64_t addr, bool isWrite)
    {
        if (alive_)
            alive_ = composer_.sharedRef(addr, isWrite);
    }

    /**
     * Windowed multi-pass sweep: the core sequential-sharing motif.
     * Emits exactly @p budget references over [0, words) of @p addrFn,
     * window by window, several passes per window.
     */
    template <typename AddrFn, typename WriteFn>
    void
    sweep(uint64_t words, uint64_t budget, AddrFn addrFn,
          WriteFn writeFn)
    {
        if (words == 0 || budget == 0)
            return;
        uint64_t passes = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   std::llround(static_cast<double>(budget) /
                                static_cast<double>(words))));
        uint64_t emitted = 0;
        while (emitted < budget && alive_) {
            for (uint64_t w0 = 0; w0 < words && emitted < budget;
                 w0 += kWindowWords) {
                uint64_t hi = std::min(words, w0 + kWindowWords);
                for (uint64_t pass = 0;
                     pass < passes && emitted < budget; ++pass) {
                    for (uint64_t w = w0; w < hi && emitted < budget;
                         ++w) {
                        ref(addrFn(w), writeFn(pass, w));
                        ++emitted;
                        if (!alive_)
                            return;
                    }
                }
            }
        }
    }

    void
    emitGlobalSweep(uint32_t phase, uint64_t budget)
    {
        if (layout_.globalWords == 0 || budget == 0)
            return;
        const uint32_t sections = p_.phases;
        uint64_t sectionWords = std::max<uint64_t>(
            1, layout_.globalWords / sections);
        uint32_t section = (tid_ + phase) % sections;
        uint64_t base = static_cast<uint64_t>(section) * sectionWords;
        uint64_t words = section + 1 == sections
            ? layout_.globalWords - base
            : sectionWords;

        auto addrFn = [&](uint64_t w) {
            return layout_.globalAddr(base + w);
        };

        // Writes are clustered into a single once-per-phase burst on
        // a slice that exactly one co-resident thread owns in any
        // phase, so shared words see one ownership transfer per phase
        // rather than per-access ping-pong. In Migratory mode the
        // owned slice rotates among the group (migrating write runs,
        // FFT-style); in OwnerWrites mode it is fixed (Gauss-style
        // own-rows updates).
        uint64_t burstLo = 0, burstWords = 0;
        if (p_.globalWriteMode != GlobalWriteMode::ReadShare &&
            p_.globalWrittenFrac > 0.0) {
            uint32_t slices, sliceIdx;
            if (p_.globalWriteMode == GlobalWriteMode::Migratory) {
                // Ownership rotates among the threads co-resident in
                // this section (rank = tid / sections), so the data
                // migrates between writers across phases.
                slices = static_cast<uint32_t>(
                    util::divCeil(p_.threads, sections));
                sliceIdx = (tid_ / sections + phase) % slices;
            } else {
                // OwnerWrites: each thread owns a fixed slice of
                // every section — one writer per address for the
                // whole run (Gauss updates only its own rows).
                slices = p_.threads;
                sliceIdx = tid_;
            }
            uint64_t slice = std::max<uint64_t>(1, words / slices);
            burstLo = std::min<uint64_t>(words - 1,
                                         sliceIdx * slice);
            uint64_t hi = std::min<uint64_t>(words, burstLo + slice);
            burstWords = std::max<uint64_t>(
                1, static_cast<uint64_t>(
                       static_cast<double>(hi - burstLo) *
                       p_.globalWrittenFrac));
            burstWords = std::min(burstWords, hi - burstLo);
            burstWords = std::min(burstWords, budget / 2);
        }

        sweep(words, budget - burstWords, addrFn,
              [](uint64_t, uint64_t) { return false; });
        for (uint64_t w = 0; w < burstWords && alive_; ++w)
            ref(addrFn(burstLo + w), true);
    }

    void
    emitEdgeSweep(uint32_t edge, uint32_t phase, uint64_t budget,
                  bool lowEnd)
    {
        if (layout_.edgeWords == 0 || budget == 0)
            return;
        const uint64_t words = layout_.edgeWords;
        auto addrFn = [&](uint64_t w) {
            return layout_.edgeAddr(edge, w);
        };

        // Both endpoints read the whole pool; each phase every word
        // is write-burst by exactly one endpoint, alternating per
        // phase so the data migrates back and forth across the edge.
        uint64_t half = std::max<uint64_t>(1, words / 2);
        uint64_t burstLo = (lowEnd ^ (phase & 1u)) ? 0 : half;
        uint64_t burstHi = burstLo == 0 ? half : words;
        uint64_t burstWords = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   static_cast<double>(burstHi - burstLo) *
                   p_.globalWrittenFrac));
        burstWords = std::min(burstWords, burstHi - burstLo);
        burstWords = std::min(burstWords, budget / 2);

        sweep(words, budget - burstWords, addrFn,
              [](uint64_t, uint64_t) { return false; });
        for (uint64_t w = 0; w < burstWords && alive_; ++w)
            ref(addrFn(burstLo + w), true);
    }

    void
    emitMailboxRuns(uint32_t phase, uint64_t budget)
    {
        if (layout_.mailboxWords == 0 || budget == 0 || p_.threads < 2)
            return;
        // Rotating partner schedule: in phase k, thread i writes a
        // message for thread i+k+1 and reads the message thread
        // i-k-1 wrote for it. Writer and reader of every used mailbox
        // therefore both touch it (in the same phase), and the
        // pairing sweeps the whole ring over the phases — the
        // random-communication structure of Fullconn with
        // deterministic, analyzable sharing.
        uint32_t hop = 1 + phase % (p_.threads - 1);
        uint32_t to = (tid_ + hop) % p_.threads;
        uint32_t from = (tid_ + p_.threads - hop) % p_.threads;

        uint64_t half = budget / 2;
        auto writeAddr = [&](uint64_t w) {
            return layout_.mailboxAddr(tid_, to,
                                       w % layout_.mailboxWords);
        };
        sweep(layout_.mailboxWords, half, writeAddr,
              [](uint64_t, uint64_t) { return true; });

        auto readAddr = [&](uint64_t w) {
            return layout_.mailboxAddr(from, tid_,
                                       w % layout_.mailboxWords);
        };
        sweep(layout_.mailboxWords, budget - half, readAddr,
              [](uint64_t, uint64_t) { return false; });
    }

    void
    emitSliceReads(uint64_t budget)
    {
        if (layout_.sliceWords == 0 || budget == 0 || p_.threads < 2)
            return;
        uint32_t left = (tid_ + p_.threads - 1) % p_.threads;
        uint32_t right = (tid_ + 1) % p_.threads;
        uint64_t half = budget / 2;
        sweep(layout_.sliceWords, half,
              [&](uint64_t w) { return layout_.sliceAddr(left, w); },
              [](uint64_t, uint64_t) { return false; });
        sweep(layout_.sliceWords, budget - half,
              [&](uint64_t w) { return layout_.sliceAddr(right, w); },
              [](uint64_t, uint64_t) { return false; });
    }

    void
    emitSliceWrite(uint64_t budget)
    {
        if (layout_.sliceWords == 0 || budget == 0)
            return;
        sweep(layout_.sliceWords, budget,
              [&](uint64_t w) { return layout_.sliceAddr(tid_, w); },
              [](uint64_t, uint64_t) { return true; });
    }

    const AppProfile &p_;
    const SharedLayout &layout_;
    uint32_t tid_;
    util::Rng rng_;
    TraceComposer composer_;
    uint64_t sharedBudget_ = 0;
    bool alive_ = true;
};

} // namespace

trace::TraceSet
generateTraces(const AppProfile &p, uint32_t scale)
{
    checkProfile(p, scale);
    SharedLayout layout = computeLayout(p, scale);
    std::vector<uint64_t> lengths = sampleThreadLengths(p, scale);

    util::Rng appRng(p.seed * 0xD1B54A32D192ED03ull + 7);
    trace::TraceSet set(p.name);
    for (uint32_t tid = 0; tid < p.threads; ++tid) {
        ThreadEmitter emitter(p, layout, tid, lengths[tid],
                              appRng.fork());
        set.addThread(emitter.emit());
    }
    return set;
}

} // namespace tsp::workload
