#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "obs/metric_defs.h"
#include "trace/address_space.h"
#include "util/bits.h"
#include "util/error.h"
#include "workload/stream.h"

namespace tsp::workload {

using trace::AddressSpace;

namespace {

/** Validate profile invariants shared by all entry points. */
void
checkProfile(const AppProfile &p, uint32_t scale)
{
    util::fatalIf(p.threads == 0, "profile needs >= 1 thread");
    util::fatalIf(!util::isPow2(scale), "scale must be a power of two");
    util::fatalIf(p.phases == 0, "profile needs >= 1 phase");
    double mix = p.globalFrac + p.neighborFrac + p.mailboxFrac +
                 p.sliceFrac;
    util::fatalIf(std::fabs(mix - 1.0) > 1e-6,
                  "sharing mixture fractions must sum to 1");
    util::fatalIf(p.refsPerSharedAddr < 1.0,
                  "refsPerSharedAddr must be >= 1");
}

/** Mean shared references per thread at this scale. */
double
meanSharedRefs(const AppProfile &p, uint32_t scale)
{
    return static_cast<double>(p.meanLength) / scale * p.dataRefFrac *
           p.sharedRefFrac;
}

} // namespace

uint64_t
SharedLayout::totalWords() const
{
    return slicesBase + static_cast<uint64_t>(threads) * sliceStride;
}

uint64_t
SharedLayout::globalAddr(uint64_t word) const
{
    return AddressSpace::sharedWord(globalBase + word);
}

uint64_t
SharedLayout::edgeAddr(uint32_t edge, uint64_t word) const
{
    return AddressSpace::sharedWord(edgesBase + edge * edgeStride +
                                    word);
}

uint64_t
SharedLayout::mailboxAddr(uint32_t from, uint32_t to,
                          uint64_t word) const
{
    uint64_t box = static_cast<uint64_t>(from) * threads + to;
    return AddressSpace::sharedWord(mailboxBase + box * mailboxStride +
                                    word);
}

uint64_t
SharedLayout::sliceAddr(uint32_t owner, uint64_t word) const
{
    return AddressSpace::sharedWord(slicesBase + owner * sliceStride +
                                    word);
}

SharedLayout
computeLayout(const AppProfile &p, uint32_t scale)
{
    checkProfile(p, scale);
    SharedLayout layout;
    layout.threads = p.threads;
    layout.phases = p.phases;

    const double sBar = meanSharedRefs(p, scale);
    const double r = p.refsPerSharedAddr;

    // Pool sizes follow from budget / refs-per-address; see generator.h.
    // Floors are kept as small as the mechanics allow so that
    // references-per-address targets survive even at high scale
    // divisors: the global pool needs one word per rotating section,
    // the other pools degenerate gracefully to single words.
    if (p.globalFrac > 0.0) {
        layout.globalWords = std::max<uint64_t>(
            p.phases, static_cast<uint64_t>(
                          std::llround(sBar * p.globalFrac / r)));
    }

    if (p.neighborFrac > 0.0) {
        layout.edgeWords = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   std::llround(sBar * p.neighborFrac / 2.0 / r)));
    }

    if (p.mailboxFrac > 0.0) {
        double perRun = sBar * p.mailboxFrac /
                        (2.0 * static_cast<double>(p.phases));
        layout.mailboxWords = std::max<uint64_t>(
            1, static_cast<uint64_t>(std::llround(perRun / r)));
    }

    if (p.sliceFrac > 0.0) {
        // Each slice is written by its owner and read by two
        // neighbors, so a thread touches 3 * sliceWords slice words;
        // sizing by 3r keeps references per address near the target.
        layout.sliceWords = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   std::llround(sBar * p.sliceFrac / (3.0 * r))));
    }

    // Strides: packed, or rounded up to a 32-byte block (8 words) so
    // no block straddles two pools (footnote 1's restructuring).
    constexpr uint64_t kBlockWords = 8;
    auto stride = [&](uint64_t words) {
        if (words == 0)
            return words;
        return p.alignSharedPools ? util::alignUp(words, kBlockWords)
                                  : words;
    };
    layout.edgeStride = stride(layout.edgeWords);
    layout.mailboxStride = stride(layout.mailboxWords);
    layout.sliceStride = stride(layout.sliceWords);

    layout.globalBase = 0;
    layout.edgesBase = stride(layout.globalBase + layout.globalWords);
    layout.mailboxBase = stride(
        layout.edgesBase +
        static_cast<uint64_t>(p.threads) * layout.edgeStride);
    layout.slicesBase = stride(
        layout.mailboxBase +
        static_cast<uint64_t>(p.threads) * p.threads *
            layout.mailboxStride);

    util::fatalIf(layout.totalWords() * AddressSpace::wordBytes >
                      AddressSpace::sharedSpan,
                  "shared layout exceeds the shared region");
    return layout;
}

std::vector<uint64_t>
sampleThreadLengths(const AppProfile &p, uint32_t scale)
{
    checkProfile(p, scale);
    util::Rng rng(p.seed * 0x9E3779B97F4A7C15ull + 1);
    const double mean = static_cast<double>(p.meanLength) /
                        static_cast<double>(scale);
    const double dev = mean * p.lengthDevPct / 100.0;
    constexpr double kMinLength = 500.0;

    std::vector<uint64_t> lengths(p.threads);
    if (p.lengthDevPct <= 0.0) {
        std::fill(lengths.begin(), lengths.end(),
                  static_cast<uint64_t>(mean));
        return lengths;
    }
    double sum = 0.0;
    std::vector<double> raw(p.threads);
    for (auto &x : raw) {
        x = std::max(kMinLength, rng.lognormalMeanDev(mean, dev));
        sum += x;
    }
    // Pin the sample mean to the target so scaled experiments stay
    // comparable; the CV is whatever the (deterministic) sample gave.
    double correction = mean * static_cast<double>(p.threads) / sum;
    for (uint32_t i = 0; i < p.threads; ++i) {
        lengths[i] = static_cast<uint64_t>(
            std::max(kMinLength, raw[i] * correction));
    }
    return lengths;
}

trace::TraceSet
generateTraces(const AppProfile &p, uint32_t scale)
{
    checkProfile(p, scale);
    SharedLayout layout = computeLayout(p, scale);
    std::vector<uint64_t> lengths = sampleThreadLengths(p, scale);

    util::Rng appRng(p.seed * 0xD1B54A32D192ED03ull + 7);
    trace::TraceSet set(p.name);
    size_t resident = 0;
    for (uint32_t tid = 0; tid < p.threads; ++tid) {
        ThreadStream stream(p, layout, tid, lengths[tid],
                            appRng.fork());
        trace::ThreadTrace tt = stream.emitAll();
        // Drop the growth slack left by the append path; the traces
        // stay resident for the whole experiment run.
        tt.shrinkToFit();
        resident += tt.residentBytes();
        set.addThread(std::move(tt));
    }
    obs::traceResidentBytes().set(static_cast<int64_t>(resident));
    return set;
}

} // namespace tsp::workload
