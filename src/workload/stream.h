/**
 * @file
 * Streaming workload generation: the generator's per-thread emission,
 * reformulated as a resumable op program so traces can be produced in
 * bounded chunks (trace::ChunkProducer) instead of materialized whole.
 *
 * Every emission step of the phase structure documented in generator.h
 * reduces to affine windowed sweeps over contiguous word ranges
 * (SweepOp); compiling a phase is pure arithmetic over the profile,
 * layout and thread id — no RNG — so the op program can be replayed
 * deterministically any number of times. The RNG feeds only the
 * TraceComposer's private-reference interleaving, exactly as in the
 * eager path.
 *
 * There is ONE emission implementation: generateTraces() itself runs
 * these ThreadStreams to completion, so the streaming chunks and the
 * materialized traces are the same sequence by construction (the
 * golden-digest and stream-parity tests pin it).
 */

#ifndef TSP_WORKLOAD_STREAM_H
#define TSP_WORKLOAD_STREAM_H

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/chunk_source.h"
#include "trace/thread_trace.h"
#include "util/rng.h"
#include "workload/app_profile.h"
#include "workload/composer.h"
#include "workload/generator.h"

namespace tsp::workload {

/**
 * One compiled emission op: a windowed multi-pass sweep emitting
 * exactly @p budget shared references over the @p words-word range
 * starting at shared word index @p wordBase, all reads or all writes.
 * The once-per-phase write bursts are sweeps too (their budget equals
 * their word count, so they make a single in-order pass).
 */
struct SweepOp
{
    uint64_t wordBase = 0;
    uint64_t words = 0;
    uint64_t budget = 0;
    bool write = false;
};

/**
 * Resumable emission of one thread's trace. stepOnce() advances by one
 * micro-step (one shared reference, one barrier, or one padding step);
 * buffered events can be drained after any step. Used two ways:
 * emitAll() for the eager generateTraces() path, and wrapped in a
 * ChunkProducer (AppStreamFactory) for the streaming path.
 */
class ThreadStream
{
  public:
    ThreadStream(const AppProfile &p, const SharedLayout &layout,
                 uint32_t tid, uint64_t length, util::Rng rng);

    /**
     * One micro-step of emission. Returns false once the trace is
     * complete (nothing will ever be appended again).
     */
    bool stepOnce();

    /** Move buffered events to @p out (chunked work runs re-merge in
     * the TraceCursor, see ThreadTrace::drainEventsTo). */
    void
    drainTo(std::vector<trace::TraceEvent> &out)
    {
        composer_.drainEventsTo(out);
    }

    /** Run to completion and take the whole trace (eager path). */
    trace::ThreadTrace emitAll();

  private:
    enum class Stage { Ops, Padding, Done };

    /** Compile phase_'s op list (pure arithmetic, no RNG). */
    void startPhase();

    void compileSliceReads(uint64_t budget);
    void compileEdgeSweep(uint32_t edge, uint32_t phase,
                          uint64_t budget, bool lowEnd);
    void compileGlobalSweep(uint32_t phase, uint64_t budget);
    void compileMailboxRuns(uint32_t phase, uint64_t budget);
    void compileSliceWrite(uint64_t budget);

    uint64_t
    phaseShare(uint64_t total, uint32_t k) const
    {
        uint64_t base = total / p_.phases;
        return k + 1 == p_.phases ? total - base * (p_.phases - 1)
                                  : base;
    }

    uint32_t edgeOf(uint32_t i) const { return i % p_.threads; }

    /**
     * Cursor into the running op, replicating the windowed multi-pass
     * loop nest of the eager sweep(): windows of kWindowWords in
     * order, `passes` passes per window, budget-bounded; the whole
     * traversal restarts while budget remains.
     */
    struct SweepExec
    {
        uint64_t passes = 1;
        uint64_t emitted = 0;
        uint64_t w0 = 0;
        uint64_t pass = 0;
        uint64_t w = 0;
        uint64_t hi = 0;

        void reset(const SweepOp &op);
        bool done(const SweepOp &op) const { return emitted >= op.budget; }
        void advance(const SweepOp &op);
    };

    AppProfile p_;
    SharedLayout layout_;
    uint32_t tid_;
    TraceComposer composer_;
    uint64_t sharedBudget_ = 0;
    uint64_t gBudget_ = 0, nBudget_ = 0, mBudget_ = 0, sBudget_ = 0;
    bool alive_ = true;

    Stage stage_ = Stage::Ops;
    uint32_t phase_ = 0;
    std::vector<SweepOp> ops_;
    size_t opIdx_ = 0;
    bool execActive_ = false;
    SweepExec exec_;
};

/**
 * trace::StreamFactory over an AppProfile: openProducer(tid) starts a
 * fresh deterministic pass of thread tid's emission, in batches of
 * stepsPerBatch micro-steps. Thread lengths and per-thread RNG streams
 * are precomputed in tid order at construction, so producers replay
 * identically no matter how often or in what order they are opened.
 */
class AppStreamFactory : public trace::StreamFactory
{
  public:
    AppStreamFactory(const AppProfile &p, uint32_t scale,
                     uint64_t stepsPerBatch = 1024);

    uint32_t threadCount() const override { return p_.threads; }

    /** Analytic: every thread emits phases-1 barriers when enabled. */
    uint64_t
    barrierCount(trace::ThreadId) const override
    {
        return p_.barriers ? p_.phases - 1 : 0;
    }

    std::unique_ptr<trace::ChunkProducer>
    openProducer(trace::ThreadId tid) override;

    const SharedLayout &layout() const { return layout_; }

  private:
    AppProfile p_;
    uint64_t stepsPerBatch_;
    SharedLayout layout_;
    std::vector<uint64_t> lengths_;
    std::vector<util::Rng> rngs_;  //!< per-thread, forked in tid order
};

} // namespace tsp::workload

#endif // TSP_WORKLOAD_STREAM_H
