/**
 * @file
 * The synthetic trace generator: expands an AppProfile into a full
 * per-thread TraceSet with the sharing structure and statistics the
 * profile targets.
 *
 * Structure per thread: execution is divided into barrier phases. In
 * each phase the thread
 *   1. reads its neighbors' result slices (slice component),
 *   2. sweeps one edge pool it shares with a ring neighbor,
 *   3. sweeps a *rotating* section of the global pool in windowed
 *      multi-pass runs (this produces the paper's sequential sharing:
 *      a thread makes many consecutive references to a shared datum
 *      before any other thread touches it),
 *   4. sweeps its other edge pool,
 *   5. exchanges mailbox runs with random partners, and
 *   6. writes its own result slice.
 * Private references and non-memory work are interleaved throughout by
 * the TraceComposer to meet the profile's ratios.
 */

#ifndef TSP_WORKLOAD_GENERATOR_H
#define TSP_WORKLOAD_GENERATOR_H

#include <cstdint>
#include <vector>

#include "trace/trace_set.h"
#include "workload/app_profile.h"

namespace tsp::workload {

/**
 * Word-index layout of an application's shared region, derived from
 * the profile's mean per-thread budgets so that per-thread references
 * per shared address come out near the target.
 */
struct SharedLayout
{
    uint32_t threads = 0;
    uint32_t phases = 1;
    uint64_t globalWords = 0;   //!< global pool size
    uint64_t edgeWords = 0;     //!< per ring-edge pool size
    uint64_t mailboxWords = 0;  //!< per (i,j) mailbox size
    uint64_t sliceWords = 0;    //!< per-thread result slice size

    /**
     * Allocation strides. Equal to the pool sizes when pools are
     * packed; rounded up to a cache-block multiple when
     * AppProfile::alignSharedPools is set, so no block straddles two
     * pools (the footnote-1 restructuring).
     */
    uint64_t edgeStride = 0;
    uint64_t mailboxStride = 0;
    uint64_t sliceStride = 0;

    uint64_t globalBase = 0;    //!< word offsets into the shared region
    uint64_t edgesBase = 0;
    uint64_t mailboxBase = 0;
    uint64_t slicesBase = 0;

    /** Total shared words allocated. */
    uint64_t totalWords() const;

    /** Byte address helpers. */
    uint64_t globalAddr(uint64_t word) const;
    uint64_t edgeAddr(uint32_t edge, uint64_t word) const;
    uint64_t mailboxAddr(uint32_t from, uint32_t to, uint64_t word) const;
    uint64_t sliceAddr(uint32_t owner, uint64_t word) const;
};

/** Compute the layout for @p profile at 1/@p scale size. */
SharedLayout computeLayout(const AppProfile &profile, uint32_t scale);

/**
 * Sample the per-thread instruction lengths for @p profile at
 * 1/@p scale size (deterministic in the profile seed). The sample mean
 * is pinned to meanLength/scale; the coefficient of variation follows
 * lengthDevPct up to sampling noise.
 */
std::vector<uint64_t> sampleThreadLengths(const AppProfile &profile,
                                          uint32_t scale);

/**
 * Generate the application's traces at 1/@p scale of the full-scale
 * thread length (scale must be a power of two). Deterministic in
 * profile.seed.
 */
trace::TraceSet generateTraces(const AppProfile &profile,
                               uint32_t scale = 1);

} // namespace tsp::workload

#endif // TSP_WORKLOAD_GENERATOR_H
