#include "workload/validate.h"

#include <cmath>
#include <sstream>

#include "analysis/static_analysis.h"
#include "util/format.h"
#include "util/rng.h"

namespace tsp::workload {

namespace {

ValidationItem
item(const std::string &metric, double target, double achieved,
     double tolerancePct)
{
    ValidationItem it;
    it.metric = metric;
    it.target = target;
    it.achieved = achieved;
    it.tolerancePct = tolerancePct;
    double denom = std::fabs(target) > 1e-12 ? std::fabs(target) : 1.0;
    it.ok = std::fabs(achieved - target) / denom <=
            tolerancePct / 100.0;
    return it;
}

} // namespace

bool
ValidationReport::allOk() const
{
    for (const auto &it : items)
        if (!it.ok)
            return false;
    return true;
}

std::string
ValidationReport::render() const
{
    std::ostringstream os;
    os << "validation: " << app << '\n';
    for (const auto &it : items) {
        os << "  " << (it.ok ? "ok  " : "FAIL") << ' ' << it.metric
           << ": target " << util::fmtFixed(it.target, 2)
           << " achieved " << util::fmtFixed(it.achieved, 2)
           << " (tol " << util::fmtFixed(it.tolerancePct, 0) << "%)\n";
    }
    return os.str();
}

ValidationReport
validateTraces(const AppProfile &profile,
               const trace::TraceSet &traces, uint32_t scale)
{
    ValidationReport report;
    report.app = profile.name;

    auto analysis = analysis::StaticAnalysis::analyze(traces);
    util::Rng rng(42);
    auto row = analysis::computeCharacteristics(analysis, rng);

    report.items.push_back(item(
        "threads", profile.threads,
        static_cast<double>(traces.threadCount()), 0.0));
    report.items.push_back(item(
        "mean thread length",
        static_cast<double>(profile.meanLength) / scale, row.lengthMean,
        5.0));
    report.items.push_back(item("shared refs %",
                                profile.sharedRefFrac * 100.0,
                                row.sharedRefsPct, 12.0));
    report.items.push_back(item("refs per shared addr",
                                profile.refsPerSharedAddr,
                                row.refsPerSharedAddrMean, 40.0));
    if (profile.lengthDevPct >= 30.0) {
        // High-variance apps: just confirm substantial imbalance.
        report.items.push_back(item("thread length dev% (loose)",
                                    profile.lengthDevPct,
                                    row.lengthDevPct, 75.0));
    } else {
        report.items.push_back(item("thread length dev% (abs)",
                                    profile.lengthDevPct,
                                    row.lengthDevPct,
                                    100.0));
    }
    return report;
}

} // namespace tsp::workload
