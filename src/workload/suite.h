/**
 * @file
 * The fourteen-application suite of Table 1: seven coarse-grain
 * programs (SPLASH-era) and seven medium-grain Presto programs, each
 * reproduced as a calibrated synthetic profile. Thread lengths, shared
 * reference fractions and references-per-shared-address follow Table 2;
 * sharing structure follows the program descriptions in Sections 3.1
 * and 4.2. Thread counts are not all recoverable from the paper (Table
 * 1's body was lost in extraction); known values are used where stated
 * (Gauss: 127, the largest) and era-plausible values elsewhere.
 */

#ifndef TSP_WORKLOAD_SUITE_H
#define TSP_WORKLOAD_SUITE_H

#include <memory>
#include <string>
#include <vector>

#include "trace/trace_set.h"
#include "workload/app_profile.h"

namespace tsp::workload {

/** The applications of Table 1, in the paper's order. */
enum class AppId {
    LocusRoute,
    Water,
    MP3D,
    Cholesky,
    BarnesHut,
    Pverify,
    Topopt,
    Fullconn,
    Grav,
    Health,
    Patch,
    Vandermonde,
    FFT,
    Gauss,
};

/** All fourteen applications in paper order. */
const std::vector<AppId> &allApps();

/** The coarse-grain subset (first seven). */
const std::vector<AppId> &coarseApps();

/** The medium-grain subset (last seven). */
const std::vector<AppId> &mediumApps();

/** Calibrated profile of @p app. */
const AppProfile &profile(AppId app);

/** Application name, as in the paper's tables. */
std::string appName(AppId app);

/** Look an application up by name; throws FatalError if unknown. */
AppId appByName(const std::string &name);

/**
 * Cache size to pair with @p app at 1/@p scale workload size: the
 * paper's per-app cache (32 or 64 KB), shrunk with the workload to
 * keep the cache/data-set ratio realistic, floored at 4 KB.
 */
uint64_t scaledCacheBytes(AppId app, uint32_t scale);

/**
 * Generate (and memoize) the application's traces at 1/@p scale.
 * The returned pointer stays valid for the process lifetime.
 */
std::shared_ptr<const trace::TraceSet> appTraces(AppId app,
                                                 uint32_t scale);

/**
 * The default workload scale for benchmarks: reads the TSP_SCALE
 * environment variable (power of two) and defaults to 8.
 */
uint32_t defaultScale();

} // namespace tsp::workload

#endif // TSP_WORKLOAD_SUITE_H
