/**
 * @file
 * Parameterized application profiles.
 *
 * The paper's workload is fourteen MPtrace-traced programs whose
 * measured characteristics appear in Tables 1 and 2. We reproduce each
 * application as a synthetic generator profile targeting those
 * characteristics: thread count, thread length (mean and deviation),
 * fraction of shared references, references per shared address, and a
 * sharing *structure* matching the program behaviours Section 4.2
 * identifies (spatially partitioned work, barrier phases that
 * read-share and write locally, migratory write runs, uniform
 * all-threads sharing, random pairwise communication).
 *
 * A profile's shared references are split across four structural
 * components (fractions sum to 1):
 *  - global:   one application-wide pool; each thread sweeps a rotating
 *              section each phase (sequential sharing, uniform pairs);
 *  - neighbor: ring pair pools between threads i and i+1 (introduces
 *              pairwise-sharing variance);
 *  - mailbox:  random-pair mailboxes written by one side, read by the
 *              other (Fullconn-style communication);
 *  - slice:    per-thread result slices written by the owner at phase
 *              end and read by its neighbors at the next phase start
 *              (read widely / write locally).
 */

#ifndef TSP_WORKLOAD_APP_PROFILE_H
#define TSP_WORKLOAD_APP_PROFILE_H

#include <cstdint>
#include <string>

namespace tsp::workload {

/** Application grain per Table 1. */
enum class Grain { Coarse, Medium };

/** How a thread's sweep over the global pool mixes writes. */
enum class GlobalWriteMode {
    ReadShare,    //!< sweeps are read-only (results go to slices)
    Migratory,    //!< sweeps read-modify-write (long write runs)
    OwnerWrites,  //!< writes only within the thread's own section
};

/** Full generator parameterization of one application. */
struct AppProfile
{
    std::string name;
    Grain grain = Grain::Coarse;

    /** Number of threads (Table 1). */
    uint32_t threads = 8;

    /** Mean dynamic thread length in instructions, at full scale. */
    uint64_t meanLength = 1'000'000;

    /** Target coefficient of variation of thread length, percent. */
    double lengthDevPct = 0.0;

    /** Fraction of instructions that reference data. */
    double dataRefFrac = 0.35;

    /** Fraction of data references to shared addresses (Table 2). */
    double sharedRefFrac = 0.5;

    /** Per-thread references per shared address (Table 2). */
    double refsPerSharedAddr = 20.0;

    /** Per-thread references per private address. */
    double refsPerPrivateAddr = 40.0;

    /** Fraction of data references that are writes. */
    double writeFrac = 0.30;

    /** Barrier phases per thread. */
    uint32_t phases = 8;

    /**
     * Emit a real barrier marker between phases. The paper's
     * trace-driven methodology free-runs the per-thread traces (no
     * synchronization is modeled), so this is off by default; turning
     * it on makes the phase structure explicit to the simulator and
     * requires every thread to be resident in a hardware context.
     */
    bool barriers = false;

    /** Sharing-structure mixture; must sum to ~1. */
    double globalFrac = 1.0;
    double neighborFrac = 0.0;
    double mailboxFrac = 0.0;
    double sliceFrac = 0.0;

    /** Write behaviour of global-pool sweeps. */
    GlobalWriteMode globalWriteMode = GlobalWriteMode::ReadShare;

    /**
     * Fraction of a thread's owned slice that receives a write burst
     * each phase (Migratory and OwnerWrites modes). Writes are
     * clustered into one run per phase — the structure Section 4.2
     * observes in the real programs ("a processor accesses a shared
     * location multiple times before there is contention"), which is
     * what keeps runtime coherence traffic orders of magnitude below
     * the static shared-reference counts.
     */
    double globalWrittenFrac = 0.25;

    /**
     * Block-align the per-thread/per-pair shared pools so that no
     * cache block straddles two pools (footnote 1: the paper's
     * programs were written — or compiler-restructured [12] — to
     * avoid false sharing). Turning this off packs the pools at word
     * granularity, reintroducing boundary false sharing; the
     * false-sharing ablation bench measures the difference.
     */
    bool alignSharedPools = true;

    /** Cache size (bytes) the paper pairs with this app, full scale. */
    uint64_t cacheBytes = 32 * 1024;

    /** Generator seed: every run of a profile is deterministic. */
    uint64_t seed = 1;
};

} // namespace tsp::workload

#endif // TSP_WORKLOAD_APP_PROFILE_H
