#include "workload/stream.h"

#include <algorithm>
#include <cmath>

#include "trace/address_space.h"
#include "util/bits.h"
#include "util/error.h"

namespace tsp::workload {

using trace::AddressSpace;

namespace {

/** Sweep window in words (8 blocks of 32 B at 4 B words). */
constexpr uint64_t kWindowWords = 64;

/** Composer ratio/pool parameters for one thread (see generator.h). */
TraceComposer::Params
composerParams(const AppProfile &p, uint32_t tid, uint64_t length)
{
    double privateRefs = static_cast<double>(length) * p.dataRefFrac *
                         (1.0 - p.sharedRefFrac);
    uint64_t poolWords = std::max<uint64_t>(
        16,
        static_cast<uint64_t>(privateRefs / p.refsPerPrivateAddr));
    TraceComposer::Params params;
    params.targetLength = length;
    params.dataRefFrac = p.dataRefFrac;
    params.sharedRefFrac = p.sharedRefFrac;
    params.writeFrac = p.writeFrac;
    params.privatePoolBase = AddressSpace::privateBase(tid);
    params.privatePoolWords = poolWords;
    util::fatalIf(poolWords * AddressSpace::wordBytes >
                      AddressSpace::privateSpan,
                  "private pool exceeds the private region");
    return params;
}

} // namespace

ThreadStream::ThreadStream(const AppProfile &p,
                           const SharedLayout &layout, uint32_t tid,
                           uint64_t length, util::Rng rng)
    : p_(p), layout_(layout), tid_(tid),
      composer_(tid, composerParams(p, tid, length), rng.fork())
{
    sharedBudget_ = static_cast<uint64_t>(
        static_cast<double>(length) * p.dataRefFrac * p.sharedRefFrac);
    auto component = [&](double frac) {
        return static_cast<uint64_t>(
            static_cast<double>(sharedBudget_) * frac);
    };
    gBudget_ = component(p.globalFrac);
    nBudget_ = component(p.neighborFrac);
    mBudget_ = component(p.mailboxFrac);
    sBudget_ = component(p.sliceFrac);
    startPhase();
}

void
ThreadStream::SweepExec::reset(const SweepOp &op)
{
    passes = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::llround(static_cast<double>(op.budget) /
                            static_cast<double>(op.words))));
    emitted = 0;
    w0 = 0;
    pass = 0;
    w = 0;
    hi = std::min(op.words, kWindowWords);
}

void
ThreadStream::SweepExec::advance(const SweepOp &op)
{
    ++emitted;
    ++w;
    if (w < hi)
        return;
    ++pass;
    if (pass < passes) {
        w = w0;
        return;
    }
    pass = 0;
    w0 += kWindowWords;
    if (w0 >= op.words)
        w0 = 0;  // full traversal done; restart while budget remains
    hi = std::min(op.words, w0 + kWindowWords);
    w = w0;
}

void
ThreadStream::startPhase()
{
    ops_.clear();
    opIdx_ = 0;
    execActive_ = false;
    const uint32_t k = phase_;
    uint64_t g = phaseShare(gBudget_, k);
    uint64_t n = phaseShare(nBudget_, k);
    uint64_t m = phaseShare(mBudget_, k);
    uint64_t s = phaseShare(sBudget_, k);
    compileSliceReads(s / 3 * 2);
    compileEdgeSweep(edgeOf(tid_), k, n / 2, /*lowEnd=*/false);
    compileGlobalSweep(k, g);
    compileEdgeSweep(edgeOf(tid_ + 1), k, n - n / 2, /*lowEnd=*/true);
    compileMailboxRuns(k, m);
    compileSliceWrite(s - s / 3 * 2);
}

void
ThreadStream::compileSliceReads(uint64_t budget)
{
    if (layout_.sliceWords == 0 || budget == 0 || p_.threads < 2)
        return;
    uint32_t left = (tid_ + p_.threads - 1) % p_.threads;
    uint32_t right = (tid_ + 1) % p_.threads;
    uint64_t half = budget / 2;
    ops_.push_back({layout_.slicesBase + left * layout_.sliceStride,
                    layout_.sliceWords, half, false});
    ops_.push_back({layout_.slicesBase + right * layout_.sliceStride,
                    layout_.sliceWords, budget - half, false});
}

void
ThreadStream::compileEdgeSweep(uint32_t edge, uint32_t phase,
                               uint64_t budget, bool lowEnd)
{
    if (layout_.edgeWords == 0 || budget == 0)
        return;
    const uint64_t words = layout_.edgeWords;
    uint64_t half = std::max<uint64_t>(1, words / 2);
    uint64_t burstLo = (lowEnd ^ (phase & 1u)) ? 0 : half;
    uint64_t burstHi = burstLo == 0 ? half : words;
    uint64_t burstWords = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(burstHi - burstLo) *
               p_.globalWrittenFrac));
    burstWords = std::min(burstWords, burstHi - burstLo);
    burstWords = std::min(burstWords, budget / 2);
    uint64_t base = layout_.edgesBase + edge * layout_.edgeStride;
    ops_.push_back({base, words, budget - burstWords, false});
    ops_.push_back({base + burstLo, burstWords, burstWords, true});
}

void
ThreadStream::compileGlobalSweep(uint32_t phase, uint64_t budget)
{
    if (layout_.globalWords == 0 || budget == 0)
        return;
    const uint32_t sections = p_.phases;
    uint64_t sectionWords =
        std::max<uint64_t>(1, layout_.globalWords / sections);
    uint32_t section = (tid_ + phase) % sections;
    uint64_t base = static_cast<uint64_t>(section) * sectionWords;
    uint64_t words = section + 1 == sections
        ? layout_.globalWords - base
        : sectionWords;

    uint64_t burstLo = 0, burstWords = 0;
    if (p_.globalWriteMode != GlobalWriteMode::ReadShare &&
        p_.globalWrittenFrac > 0.0) {
        uint32_t slices, sliceIdx;
        if (p_.globalWriteMode == GlobalWriteMode::Migratory) {
            slices = static_cast<uint32_t>(
                util::divCeil(p_.threads, sections));
            sliceIdx = (tid_ / sections + phase) % slices;
        } else {
            slices = p_.threads;
            sliceIdx = tid_;
        }
        uint64_t slice = std::max<uint64_t>(1, words / slices);
        burstLo = std::min<uint64_t>(words - 1, sliceIdx * slice);
        uint64_t hi = std::min<uint64_t>(words, burstLo + slice);
        burstWords = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   static_cast<double>(hi - burstLo) *
                   p_.globalWrittenFrac));
        burstWords = std::min(burstWords, hi - burstLo);
        burstWords = std::min(burstWords, budget / 2);
    }

    ops_.push_back({layout_.globalBase + base, words,
                    budget - burstWords, false});
    ops_.push_back({layout_.globalBase + base + burstLo, burstWords,
                    burstWords, true});
}

void
ThreadStream::compileMailboxRuns(uint32_t phase, uint64_t budget)
{
    if (layout_.mailboxWords == 0 || budget == 0 || p_.threads < 2)
        return;
    uint32_t hop = 1 + phase % (p_.threads - 1);
    uint32_t to = (tid_ + hop) % p_.threads;
    uint32_t from = (tid_ + p_.threads - hop) % p_.threads;
    uint64_t half = budget / 2;
    uint64_t writeBase = layout_.mailboxBase +
        (static_cast<uint64_t>(tid_) * p_.threads + to) *
            layout_.mailboxStride;
    uint64_t readBase = layout_.mailboxBase +
        (static_cast<uint64_t>(from) * p_.threads + tid_) *
            layout_.mailboxStride;
    // The eager path's `w % mailboxWords` wrap never fires: sweep
    // indices stay below the word count, so the mapping is affine.
    ops_.push_back({writeBase, layout_.mailboxWords, half, true});
    ops_.push_back(
        {readBase, layout_.mailboxWords, budget - half, false});
}

void
ThreadStream::compileSliceWrite(uint64_t budget)
{
    if (layout_.sliceWords == 0 || budget == 0)
        return;
    ops_.push_back({layout_.slicesBase + tid_ * layout_.sliceStride,
                    layout_.sliceWords, budget, true});
}

bool
ThreadStream::stepOnce()
{
    switch (stage_) {
      case Stage::Done:
        return false;
      case Stage::Padding:
        if (composer_.padStep())
            return true;
        stage_ = Stage::Done;
        return false;
      case Stage::Ops:
        break;
    }
    for (;;) {
        if (opIdx_ == ops_.size()) {
            // Phase complete. Every thread emits the same barrier
            // sequence regardless of how much budget survived.
            if (phase_ + 1 < p_.phases) {
                ++phase_;
                startPhase();
                if (p_.barriers) {
                    composer_.barrier();
                    return true;
                }
                continue;
            }
            stage_ = Stage::Padding;
            if (composer_.padStep())
                return true;
            stage_ = Stage::Done;
            return false;
        }
        if (!alive_) {
            // Budget exhausted: the remaining ops cannot emit (the
            // eager sweeps would fall straight through too).
            opIdx_ = ops_.size();
            continue;
        }
        const SweepOp &op = ops_[opIdx_];
        if (!execActive_) {
            if (op.words == 0 || op.budget == 0) {
                ++opIdx_;
                continue;
            }
            exec_.reset(op);
            execActive_ = true;
        }
        alive_ = composer_.sharedRef(
            AddressSpace::sharedWord(op.wordBase + exec_.w), op.write);
        exec_.advance(op);
        if (!alive_ || exec_.done(op)) {
            execActive_ = false;
            ++opIdx_;
        }
        return true;
    }
}

trace::ThreadTrace
ThreadStream::emitAll()
{
    while (stepOnce()) {
    }
    return composer_.takeTrace();
}

namespace {

/** ChunkProducer running a ThreadStream in bounded batches. */
class ThreadStreamProducer : public trace::ChunkProducer
{
  public:
    ThreadStreamProducer(const AppProfile &p, const SharedLayout &layout,
                         uint32_t tid, uint64_t length, util::Rng rng,
                         uint64_t steps)
        : stream_(p, layout, tid, length, rng), steps_(steps)
    {
    }

    bool
    produce(std::vector<trace::TraceEvent> &out) override
    {
        if (done_)
            return false;
        size_t before = out.size();
        for (uint64_t i = 0; i < steps_; ++i) {
            if (!stream_.stepOnce()) {
                done_ = true;
                break;
            }
        }
        stream_.drainTo(out);
        return out.size() > before || !done_;
    }

    /** ThreadStream is a value type: a copy resumes independently. */
    std::unique_ptr<trace::ChunkProducer>
    clone() const override
    {
        return std::unique_ptr<trace::ChunkProducer>(
            new ThreadStreamProducer(*this));
    }

  private:
    ThreadStream stream_;
    uint64_t steps_;
    bool done_ = false;
};

} // namespace

AppStreamFactory::AppStreamFactory(const AppProfile &p, uint32_t scale,
                                   uint64_t stepsPerBatch)
    : p_(p), stepsPerBatch_(stepsPerBatch),
      layout_(computeLayout(p, scale)),
      lengths_(sampleThreadLengths(p, scale))
{
    util::fatalIf(stepsPerBatch == 0, "stepsPerBatch must be >= 1");
    // Fork the per-thread RNG streams in thread-id order, exactly as
    // generateTraces does, so streamed and materialized traces agree.
    util::Rng appRng(p_.seed * 0xD1B54A32D192ED03ull + 7);
    rngs_.reserve(p_.threads);
    for (uint32_t tid = 0; tid < p_.threads; ++tid)
        rngs_.push_back(appRng.fork());
}

std::unique_ptr<trace::ChunkProducer>
AppStreamFactory::openProducer(trace::ThreadId tid)
{
    util::fatalIf(tid >= p_.threads, "thread id out of range");
    return std::make_unique<ThreadStreamProducer>(
        p_, layout_, tid, lengths_[tid], rngs_[tid], stepsPerBatch_);
}

} // namespace tsp::workload
