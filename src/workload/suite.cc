#include "workload/suite.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "util/bits.h"
#include "util/error.h"
#include "workload/generator.h"

namespace tsp::workload {

namespace {

/**
 * Shorthand builder. Targets marked (T2) come from Table 2; sharing
 * structure follows the per-program descriptions in Sections 3.1/4.2.
 */
AppProfile
make(const std::string &name, Grain grain, uint32_t threads,
     uint64_t meanLengthK, double lengthDevPct, double sharedPct,
     double refsPerSharedAddr, uint64_t cacheKB, uint64_t seed)
{
    AppProfile p;
    p.name = name;
    p.grain = grain;
    p.threads = threads;
    p.meanLength = meanLengthK * 1000;
    p.lengthDevPct = lengthDevPct;
    p.sharedRefFrac = sharedPct / 100.0;
    p.refsPerSharedAddr = refsPerSharedAddr;
    p.cacheBytes = cacheKB * 1024;
    p.seed = seed;
    return p;
}

std::vector<AppProfile>
buildProfiles()
{
    std::vector<AppProfile> v;

    // ----- coarse grain (32 KB caches) -------------------------------
    {
        // VLSI standard-cell router: cost-grid read-shared, routed
        // wires written locally; mild neighborhood structure.
        AppProfile p = make("LocusRoute", Grain::Coarse, 10, 1055, 14.6,
                            57.4, 15, 32, 101);
        p.globalFrac = 0.85;
        p.neighborFrac = 0.10;
        p.sliceFrac = 0.05;
        p.mailboxFrac = 0.0;
        p.globalWriteMode = GlobalWriteMode::OwnerWrites;
        v.push_back(p);
    }
    {
        // Molecular dynamics: positions read-shared each step, own
        // molecules updated locally at step end.
        AppProfile p = make("Water", Grain::Coarse, 8, 467, 2.4, 71.7,
                            23, 32, 102);
        p.globalFrac = 0.90;
        p.sliceFrac = 0.10;
        p.globalWriteMode = GlobalWriteMode::ReadShare;
        v.push_back(p);
    }
    {
        // Rarefied-flow particle simulation: particles migrate between
        // cells; long read-modify-write runs.
        AppProfile p = make("MP3D", Grain::Coarse, 8, 1674, 0.9, 82.6,
                            24, 32, 103);
        p.globalFrac = 1.0;
        p.globalWriteMode = GlobalWriteMode::Migratory;
        v.push_back(p);
    }
    {
        // Sparse Cholesky: supernodal columns processed in write runs;
        // little of the reference stream is shared (17%).
        AppProfile p = make("Cholesky", Grain::Coarse, 8, 2994, 0.0,
                            17.1, 24, 32, 104);
        p.globalFrac = 1.0;
        p.globalWriteMode = GlobalWriteMode::Migratory;
        v.push_back(p);
    }
    {
        // N-body: positions read widely during the long computation
        // phase; each process writes only its own particles at the
        // phase end (Section 4.2's worked example).
        AppProfile p = make("Barnes-Hut", Grain::Coarse, 8, 597, 7.0,
                            58.6, 8, 32, 105);
        p.globalFrac = 0.85;
        p.sliceFrac = 0.15;
        p.globalWriteMode = GlobalWriteMode::ReadShare;
        v.push_back(p);
    }
    {
        // Boolean-equivalence checker: high shared fraction, deep
        // revisiting of shared circuit structures.
        AppProfile p = make("Pverify", Grain::Coarse, 16, 1095, 22.8,
                            91.7, 98, 32, 106);
        p.globalFrac = 0.90;
        p.neighborFrac = 0.10;
        p.globalWriteMode = GlobalWriteMode::Migratory;
        v.push_back(p);
    }
    {
        // Simulated annealing on circuit topology: very long runs on
        // shared structures (611 refs/address).
        AppProfile p = make("Topopt", Grain::Coarse, 8, 2934, 0.0, 50.7,
                            611, 32, 107);
        p.globalFrac = 0.80;
        p.neighborFrac = 0.20;
        p.globalWriteMode = GlobalWriteMode::Migratory;
        v.push_back(p);
    }

    // ----- medium grain (64 KB caches; Health & FFT use 32 KB) -------
    {
        // Fully connected processors communicating at random.
        AppProfile p = make("Fullconn", Grain::Medium, 32, 974, 6.1,
                            95.6, 493, 64, 108);
        p.globalFrac = 0.40;
        p.mailboxFrac = 0.60;
        p.globalWriteMode = GlobalWriteMode::ReadShare;
        v.push_back(p);
    }
    {
        // Presto Barnes-Hut clustering: read-shared tree, local
        // updates, neighborhood interactions.
        AppProfile p = make("Grav", Grain::Medium, 32, 763, 38.9, 98.2,
                            43, 64, 109);
        p.globalFrac = 0.60;
        p.neighborFrac = 0.20;
        p.sliceFrac = 0.20;
        p.globalWriteMode = GlobalWriteMode::ReadShare;
        v.push_back(p);
    }
    {
        // Doctors/patients/centers discrete simulation: message-like
        // interactions, highly variable thread lengths.
        AppProfile p = make("Health", Grain::Medium, 24, 1208, 95.2,
                            93.5, 854, 32, 110);
        p.globalFrac = 0.20;
        p.neighborFrac = 0.30;
        p.mailboxFrac = 0.50;
        p.globalWriteMode = GlobalWriteMode::ReadShare;
        v.push_back(p);
    }
    {
        // Radiosity: patches read-shared, own patch results written.
        AppProfile p = make("Patch", Grain::Medium, 36, 488, 59.1, 97.4,
                            73, 64, 111);
        p.globalFrac = 0.50;
        p.neighborFrac = 0.40;
        p.sliceFrac = 0.10;
        p.globalWriteMode = GlobalWriteMode::ReadShare;
        v.push_back(p);
    }
    {
        // Matrix-operation pipeline: neighbor hand-offs dominate; very
        // high temporal locality (1647 refs/address).
        AppProfile p = make("Vandermonde", Grain::Medium, 16, 1819,
                            80.3, 98.7, 1647, 64, 112);
        p.globalFrac = 0.30;
        p.neighborFrac = 0.70;
        p.globalWriteMode = GlobalWriteMode::Migratory;
        v.push_back(p);
    }
    {
        // FFT: 73% of shared elements migratory, accessed in long
        // write runs (Section 4.2); the largest thread-length
        // deviation of any application (187.6%).
        AppProfile p = make("FFT", Grain::Medium, 32, 191, 187.6, 72.4,
                            42, 32, 113);
        p.globalFrac = 0.70;
        p.neighborFrac = 0.30;
        p.globalWriteMode = GlobalWriteMode::Migratory;
        v.push_back(p);
    }
    {
        // Gaussian elimination: all 127 threads share the matrix; each
        // updates its own rows and reads the pivot rows.
        AppProfile p = make("Gauss", Grain::Medium, 127, 210, 84.6,
                            95.0, 26, 64, 114);
        p.globalFrac = 1.0;
        p.globalWriteMode = GlobalWriteMode::OwnerWrites;
        v.push_back(p);
    }

    return v;
}

const std::vector<AppProfile> &
profiles()
{
    static const std::vector<AppProfile> all = buildProfiles();
    return all;
}

} // namespace

const std::vector<AppId> &
allApps()
{
    static const std::vector<AppId> apps = {
        AppId::LocusRoute, AppId::Water,  AppId::MP3D,
        AppId::Cholesky,   AppId::BarnesHut, AppId::Pverify,
        AppId::Topopt,     AppId::Fullconn,  AppId::Grav,
        AppId::Health,     AppId::Patch,     AppId::Vandermonde,
        AppId::FFT,        AppId::Gauss,
    };
    return apps;
}

const std::vector<AppId> &
coarseApps()
{
    static const std::vector<AppId> apps(allApps().begin(),
                                         allApps().begin() + 7);
    return apps;
}

const std::vector<AppId> &
mediumApps()
{
    static const std::vector<AppId> apps(allApps().begin() + 7,
                                         allApps().end());
    return apps;
}

const AppProfile &
profile(AppId app)
{
    return profiles().at(static_cast<size_t>(app));
}

std::string
appName(AppId app)
{
    return profile(app).name;
}

AppId
appByName(const std::string &name)
{
    for (AppId app : allApps())
        if (appName(app) == name)
            return app;
    util::fatal("unknown application: " + name);
}

uint64_t
scaledCacheBytes(AppId app, uint32_t scale)
{
    util::fatalIf(!util::isPow2(scale), "scale must be a power of two");
    uint64_t bytes = profile(app).cacheBytes / scale;
    return std::max<uint64_t>(bytes, 4 * 1024);
}

std::shared_ptr<const trace::TraceSet>
appTraces(AppId app, uint32_t scale)
{
    static std::mutex mutex;
    static std::map<std::pair<AppId, uint32_t>,
                    std::shared_ptr<const trace::TraceSet>>
        cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto key = std::make_pair(app, scale);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    auto traces = std::make_shared<const trace::TraceSet>(
        generateTraces(profile(app), scale));
    cache.emplace(key, traces);
    return traces;
}

uint32_t
defaultScale()
{
    const char *env = std::getenv("TSP_SCALE");
    if (!env)
        return 8;
    long v = std::strtol(env, nullptr, 10);
    util::fatalIf(v <= 0 || !util::isPow2(static_cast<uint64_t>(v)),
                  "TSP_SCALE must be a positive power of two");
    return static_cast<uint32_t>(v);
}

} // namespace tsp::workload
